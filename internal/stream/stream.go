// Package stream turns the offline train→artifact→serve chain into a live
// loop. Raw GPS trajectories enter through a bounded ingest queue
// (backpressure instead of unbounded memory growth), map-matching workers
// recover network paths from them with the HMM matcher in internal/traj,
// and an incremental trainer periodically fine-tunes the current model on
// the accumulated observation window — warm-starting from the serving
// weights with deterministic seeding, so the same ingest sequence always
// produces the same chain of artifacts. Each retrain emits a new
// lineage-stamped artifact: persisted atomically to disk (where the serve
// layer's watcher picks it up) and/or pushed directly through a publish
// hook (the serve layer's hot swap).
//
// Durability and provenance. With Config.WALDir set, every accepted
// observation is appended to a segmented write-ahead log (internal/wal)
// before it is folded into the training window, and each committed
// generation writes a retrain marker recording exactly which observations
// it trained on and with what configuration. A restarted service rebuilds
// its window from the log, and Replay reconstructs any logged generation
// bit-for-bit from the log plus the base artifact. When the log itself
// fails (disk full, I/O error), the pipeline does not silently drop
// observations: it flips into a visible degraded state — matched paths
// are parked in a bounded in-memory buffer, excluded from the training
// window (the window must stay a subset of the log), and a background
// loop re-appends them with exponential backoff until the disk recovers
// and a final fsync succeeds, at which point the service reports ready
// again. Worker panics (matcher or retrainer) are contained: recovered,
// counted, and the worker keeps draining. Independently of the
// WAL, every retrain seals its training window into a Merkle batch
// (internal/merkle): the batch root and a chained root over all
// generations are stamped into the artifact's lineage, and ProveTrajectory
// issues inclusion proofs against the current generation's root.
//
// The package deliberately does not import internal/serve: the server
// consumes a Service through the serve.Ingestor interface, and the Service
// reaches the server through the Publish callback, so either side can be
// run and tested without the other. Provenance crosses the same boundary
// through the wire types of the leaf package internal/api.
//
// The pipeline instruments itself on an internal/obsv registry
// (Config.Metrics; pathrank-serve passes the server's registry so one
// GET /metrics scrape covers both): observation outcomes, retrain counts
// and latency, queue/window/pending gauges, and WAL fsync health. See
// docs/OPERATIONS.md for the metric reference.
package stream

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pathrank/internal/api"
	"pathrank/internal/dataset"
	"pathrank/internal/fault"
	"pathrank/internal/merkle"
	"pathrank/internal/obsv"
	"pathrank/internal/pathrank"
	"pathrank/internal/spath"
	"pathrank/internal/traj"
	"pathrank/internal/wal"
)

// ErrBacklog reports a full ingest queue; the caller should retry later.
// The serve layer maps it to 503.
var ErrBacklog = errors.New("stream: ingest queue full")

// Config parameterizes the live pipeline.
type Config struct {
	// QueueSize bounds the ingest queue in trajectories (default 256).
	// When full, IngestGPS fails fast with ErrBacklog.
	QueueSize int
	// Workers is the number of map-matching workers (default 2). Matching
	// is CPU-bound Viterbi decoding, so a couple of workers keep up with
	// substantial ingest rates without starving the serving path.
	Workers int
	// Window bounds the retained observation window in matched paths
	// (default 1024). Older observations are evicted first.
	Window int
	// MinObservations is how many new observations must accumulate before
	// a periodic retrain fires (default 16). RetrainNow ignores it.
	MinObservations int
	// Interval is the periodic retrain cadence; 0 disables the timer
	// (retraining then only happens through RetrainNow).
	Interval time.Duration
	// MinHops discards matched paths with fewer edges (default 2): a
	// trajectory that collapses to a point or a single hop carries no
	// ranking signal.
	MinHops int
	// Match parameterizes the HMM map matcher; zero-valued fields use
	// traj.DefaultMatchConfig.
	Match traj.MatchConfig
	// Engine selects the matcher's shortest-path backend ("ch", "alt",
	// "dijkstra"; "" defaults to ch). The artifact's persisted structure is
	// used when it matches the requested kind; otherwise the engine is
	// built at service construction. The serve layer passes its own engine
	// flag through, so "-engine dijkstra" genuinely avoids preprocessing.
	Engine string
	// Train parameterizes each fine-tune step; zero-valued fields fall
	// back to pathrank.DefaultFineTuneConfig. Train.Seed is the base seed:
	// generation g trains with Seed+g, which keeps every step deterministic
	// while decorrelating the shuffles of successive generations.
	Train pathrank.TrainConfig
	// ArtifactPath, when set, receives every new generation as an
	// atomically renamed artifact bundle.
	ArtifactPath string
	// Publish, when non-nil, is invoked with every new generation (the
	// serve layer wires it to Server.Swap). A publish error fails the
	// retrain; the pipeline keeps the previous generation.
	Publish func(*pathrank.Artifact) error
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, is the registry the pipeline registers its
	// Prometheus-format metric families on — pathrank-serve passes the
	// same registry here and to the serve layer so GET /metrics exports
	// both. nil gives the pipeline a private registry.
	Metrics *obsv.Registry

	// WALDir, when set, enables the trajectory write-ahead log in that
	// directory: accepted observations are logged before they enter the
	// window, the window is rebuilt from the log on startup, and each
	// retrain writes a marker that makes the generation replayable.
	WALDir string
	// WALFsync selects the log's fsync policy: "batch" (default; fsync at
	// retrain boundaries and rotation), "always" (fsync every record), or
	// "interval" (background fsync every WALSyncInterval).
	WALFsync string
	// WALSyncInterval is the "interval" policy cadence (default 200ms).
	WALSyncInterval time.Duration
	// WALSegmentBytes is the segment rotation threshold (default 4 MiB).
	WALSegmentBytes int64
	// WALRetain, when positive, caps the sealed segments kept on disk.
	// Retention trades replay depth for space: pruned observations cannot
	// be replayed, so leave it 0 when full-history replay matters.
	WALRetain int
	// DegradedBuffer bounds the in-memory parking buffer of degraded mode
	// in observations (default: Window). While WAL appends fail, matched
	// paths accumulate here instead of entering the window; on overflow
	// the oldest parked observation is dropped and counted as lost — the
	// documented loss bound of degraded mode.
	DegradedBuffer int
}

// observation is one map-matched trajectory. seq is the ingest sequence
// number: the window is sorted by it before training, so the training set
// order — and with it the seeded shuffle — is independent of worker
// scheduling.
type observation struct {
	seq  int64
	path spath.Path
}

// Stats is a point-in-time snapshot of pipeline counters.
type Stats struct {
	QueueDepth    int
	Received      int64
	Dropped       int64 // rejected with ErrBacklog
	Matched       int64
	MatchFailed   int64
	WindowSize    int
	PendingTrain  int // new observations since the last retrain
	Generation    int
	Retrains      int64
	RetrainErrors int64
	// WALErrors counts WAL append failures (each parks its observation
	// for degraded-mode re-sync); Recovered is how many observations the
	// startup window rebuild replayed from the WAL. Both stay 0 with the
	// WAL disabled.
	WALErrors int64
	Recovered int
	// Degraded reports whether the pipeline is currently in degraded mode
	// (WAL appends failing, observations parked). Parked is the current
	// parking-buffer depth; Lost counts observations dropped on parking
	// overflow; WorkerPanics counts contained worker panics.
	Degraded     bool
	Parked       int
	Lost         int64
	WorkerPanics int64
}

// Service is the live pipeline: ingest queue, map-matching workers, and
// the incremental retrainer. Create it with New; IngestGPS, RetrainNow,
// Stats, and Artifact are safe for concurrent use.
type Service struct {
	cfg     Config
	matcher *traj.Matcher
	queue   chan ingestItem

	// retrainMu serializes retrains so two triggers cannot both fine-tune
	// from the same parent and race to publish.
	retrainMu sync.Mutex

	// log is the trajectory WAL; nil when Config.WALDir is empty.
	log *wal.Log

	// obs is the pipeline's Prometheus instrumentation; always non-nil
	// after New.
	obs *streamMetrics

	// degraded is the pipeline's health flag, readable without s.mu from
	// metrics and the hot ingest path. The detail behind it (since,
	// reason, parked buffer) lives under s.mu; recoverKick wakes the
	// recovery loop when an append failure first parks an observation.
	degraded    atomic.Bool
	recoverKick chan struct{}

	mu            sync.Mutex
	art           *pathrank.Artifact
	window        []observation // ring buffer once it reaches cfg.Window
	winHead       int           // oldest element when the ring is full
	seq           int64
	pending       int // new observations since last retrain
	received      int64
	dropped       int64
	matched       int64
	matchFailed   int64
	retrains      int64
	retrainErrors int64
	walErrors     int64
	recovered     int // observations replayed from the WAL at startup

	// Degraded-mode state, guarded by mu. parked holds matched
	// observations whose WAL append failed, oldest first; only the
	// recovery loop pops it, so parked[0] is stable across an unlocked
	// re-append attempt. They are not in the window — the window must
	// stay a subset of the log.
	degradedSince  time.Time
	degradedReason string
	parked         []observation
	parkedLost     int64
	workerPanics   int64

	// Provenance of the current generation: chain is the running chained
	// root (zero before any committed batch), batch the sealed Merkle
	// batch of the latest retrain, batchSeqs the ingest seq of each leaf
	// in training order. batch and batchSeqs are nil until the first
	// retrain (or after a restart: proofs cover live batches only).
	chain     merkle.Hash
	batch     *merkle.Batch
	batchSeqs []int64
}

// windowAddLocked appends o to the window, evicting the oldest
// observation in O(1) once the window is at capacity: the slice becomes a
// ring and the head slot — necessarily the oldest append — is overwritten
// in place. Callers hold s.mu. Retraining sorts its window copy by seq, so
// the ring's rotation never reaches the training set order.
func (s *Service) windowAddLocked(o observation) {
	if len(s.window) < s.cfg.Window {
		s.window = append(s.window, o)
		return
	}
	s.window[s.winHead] = o
	s.winHead++
	if s.winHead == len(s.window) {
		s.winHead = 0
	}
}

// windowSnapshotLocked copies the window out of the ring. Callers hold
// s.mu.
func (s *Service) windowSnapshotLocked() []observation {
	out := make([]observation, 0, len(s.window))
	out = append(out, s.window[s.winHead:]...)
	out = append(out, s.window[:s.winHead]...)
	return out
}

type ingestItem struct {
	seq     int64
	records []traj.GPSRecord
}

// New builds a Service that evolves art. The artifact's graph anchors the
// map matcher; its model is never mutated — each retrain fine-tunes a
// clone, so the artifact handed in (and every one published) can keep
// serving traffic while the next generation trains.
func New(art *pathrank.Artifact, cfg Config) (*Service, error) {
	if art == nil || art.Graph == nil || art.Model == nil {
		return nil, fmt.Errorf("stream: artifact needs a graph and a model")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 1024
	}
	if cfg.MinObservations <= 0 {
		cfg.MinObservations = 16
	}
	if cfg.DegradedBuffer <= 0 {
		cfg.DegradedBuffer = cfg.Window
	}
	if cfg.MinHops <= 0 {
		cfg.MinHops = 2
	}
	// Per-field matcher defaults, so a caller overriding only SigmaM (say,
	// for noisier receivers) keeps the defaults for the rest. NewMatcher
	// also defaults Candidates/SigmaM/BetaM, but not StrideSec — and an
	// unsubsampled 1 Hz stream makes Viterbi decoding needlessly slow.
	def := traj.DefaultMatchConfig()
	if cfg.Match.Candidates <= 0 {
		cfg.Match.Candidates = def.Candidates
	}
	if cfg.Match.SigmaM <= 0 {
		cfg.Match.SigmaM = def.SigmaM
	}
	if cfg.Match.BetaM <= 0 {
		cfg.Match.BetaM = def.BetaM
	}
	if cfg.Match.StrideSec <= 0 {
		cfg.Match.StrideSec = def.StrideSec
	}
	// The matcher routes on the artifact's persisted speedup structures
	// when they back the requested engine kind (zero preprocessing at
	// service start); otherwise the engine is built here once and every
	// matching worker amortizes it.
	kind := spath.EngineCH
	if cfg.Engine != "" {
		var err error
		if kind, err = spath.ParseEngineKind(cfg.Engine); err != nil {
			return nil, fmt.Errorf("stream: %w", err)
		}
	}
	engine := art.Prep.Engine(kind, art.Graph)
	if engine == nil {
		engine = spath.NewEngine(kind, art.Graph, spath.ByLength, spath.EngineConfig{})
	}
	s := &Service{
		cfg:         cfg,
		matcher:     traj.NewMatcherEngine(art.Graph, cfg.Match, engine),
		queue:       make(chan ingestItem, cfg.QueueSize),
		art:         art,
		recoverKick: make(chan struct{}, 1),
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	s.obs = newStreamMetrics(reg, s)
	// The provenance chain resumes from the artifact's lineage: the
	// persisted artifact is the authoritative record of what has been
	// committed. A blank ChainRoot (pre-provenance artifact, or genesis)
	// starts the chain from the zero hash.
	if art.Lineage.ChainRoot != "" {
		h, err := merkle.ParseHash(art.Lineage.ChainRoot)
		if err != nil {
			return nil, fmt.Errorf("stream: artifact lineage ChainRoot: %w", err)
		}
		s.chain = h
	}
	if cfg.WALDir != "" {
		if cfg.Train.Validation != nil {
			// Validation-driven early stopping depends on a query set a WAL
			// record cannot capture, so such a run would not be replayable.
			return nil, fmt.Errorf("stream: Train.Validation is incompatible with the WAL (replay could not reproduce early stopping)")
		}
		if err := s.openWAL(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// openWAL opens (or creates) the trajectory log and rebuilds the
// in-memory window from it: every intact observation record is replayed
// through the same eviction policy as live ingest, the ingest sequence
// resumes after the highest logged seq, and the pending count restarts
// from the records logged after the last retrain marker.
func (s *Service) openWAL() error {
	pol := wal.SyncBatch
	if s.cfg.WALFsync != "" {
		var err error
		if pol, err = wal.ParseSyncPolicy(s.cfg.WALFsync); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
	}
	log, err := wal.Open(s.cfg.WALDir, wal.Options{
		SegmentBytes: s.cfg.WALSegmentBytes,
		Sync:         pol,
		SyncEvery:    s.cfg.WALSyncInterval,
		Retain:       s.cfg.WALRetain,
		OnSync: func(d time.Duration) {
			s.obs.walFsync.Observe(d.Seconds())
		},
	})
	if err != nil {
		return fmt.Errorf("stream: open WAL: %w", err)
	}
	var lastMarker *retrainMarker
	replayErr := log.Replay(func(idx uint64, payload []byte) error {
		if len(payload) == 0 {
			return fmt.Errorf("stream: WAL record %d is empty", idx)
		}
		switch payload[0] {
		case walRecObservation:
			o, err := decodeObservation(payload)
			if err != nil {
				return fmt.Errorf("stream: WAL record %d: %w", idx, err)
			}
			if err := validateObservation(o, s.art.Graph); err != nil {
				return fmt.Errorf("stream: WAL record %d: %w", idx, err)
			}
			s.windowAddLocked(o)
			if o.seq > s.seq {
				s.seq = o.seq
			}
			s.recovered++
			s.pending++
		case walRecRetrain:
			m, err := decodeRetrainMarker(payload)
			if err != nil {
				return fmt.Errorf("stream: WAL record %d: %w", idx, err)
			}
			lastMarker = &m
			s.pending = 0
		default:
			return fmt.Errorf("stream: WAL record %d has unknown type 0x%02x", idx, payload[0])
		}
		return nil
	})
	if replayErr != nil {
		log.Close()
		return replayErr
	}
	s.log = log
	if rec := log.Recovery(); (rec.TornBytes > 0 || s.recovered > 0) && s.cfg.Logf != nil {
		s.cfg.Logf("wal: recovered %d observations into the window (%d records total, torn tail %d bytes)",
			len(s.window), rec.Records, rec.TornBytes)
	}
	// The artifact normally matches the last marker (the marker is written
	// only after the artifact is durably persisted). A marker ahead of the
	// artifact means the caller restarted from an older artifact: training
	// continues from what was handed in, and the divergence is surfaced
	// rather than guessed around — Replay can still reconstruct the logged
	// chain.
	if lastMarker != nil && lastMarker.Generation > s.art.Lineage.Generation && s.cfg.Logf != nil {
		s.cfg.Logf("wal: log has retrain markers through generation %d but the artifact is generation %d; continuing from the artifact",
			lastMarker.Generation, s.art.Lineage.Generation)
	}
	return nil
}

// Close releases the service's write-ahead log (flushing any unsynced
// tail). It does not stop Run — cancel its context first. Safe to call
// when the WAL is disabled, and at most once.
func (s *Service) Close() error {
	if s.log == nil {
		return nil
	}
	return s.log.Close()
}

// IngestGPS enqueues one raw trajectory for asynchronous map matching. It
// never blocks: when the queue is full it fails fast with ErrBacklog so
// the caller (an HTTP handler under load) can shed instead of stall.
func (s *Service) IngestGPS(records []traj.GPSRecord) error {
	if len(records) == 0 {
		return fmt.Errorf("stream: empty trajectory")
	}
	s.mu.Lock()
	s.seq++
	item := ingestItem{seq: s.seq, records: records}
	s.mu.Unlock()
	select {
	case s.queue <- item:
		s.mu.Lock()
		s.received++
		s.mu.Unlock()
		return nil
	default:
		s.mu.Lock()
		s.dropped++
		s.mu.Unlock()
		s.obs.observations.With(obsDropped).Inc()
		return ErrBacklog
	}
}

// Artifact returns the newest generation.
func (s *Service) Artifact() *pathrank.Artifact {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.art
}

// Stats returns a snapshot of the pipeline counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		QueueDepth:    len(s.queue),
		Received:      s.received,
		Dropped:       s.dropped,
		Matched:       s.matched,
		MatchFailed:   s.matchFailed,
		WindowSize:    len(s.window),
		PendingTrain:  s.pending,
		Generation:    s.art.Lineage.Generation,
		Retrains:      s.retrains,
		RetrainErrors: s.retrainErrors,
		WALErrors:     s.walErrors,
		Recovered:     s.recovered,
		Degraded:      s.degraded.Load(),
		Parked:        len(s.parked),
		Lost:          s.parkedLost,
		WorkerPanics:  s.workerPanics,
	}
}

// Run starts the map-matching workers, the WAL recovery loop (when the
// WAL is enabled), and, when cfg.Interval > 0, the periodic retrain
// loop. It blocks until ctx is canceled and all workers have stopped.
func (s *Service) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.matchLoop(ctx)
		}()
	}
	if s.log != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.recoverLoop(ctx)
		}()
	}
	if s.cfg.Interval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.retrainLoop(ctx)
		}()
	}
	wg.Wait()
	return nil
}

// matchLoop drains the ingest queue, recovering network paths. Each
// trajectory is matched inside a panic guard: a panic anywhere in the
// match path (the HMM decoder, an engine query, an injected fault) is
// recovered and counted, the trajectory is abandoned, and the worker
// keeps draining the queue — one poisoned input must not stop ingest.
func (s *Service) matchLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case item := <-s.queue:
			s.matchGuarded(ctx, item)
		}
	}
}

// matchGuarded runs matchOne under the worker panic guard.
func (s *Service) matchGuarded(ctx context.Context, item ingestItem) {
	defer func() {
		if r := recover(); r != nil {
			s.notePanic("match", fmt.Sprintf("trajectory %d", item.seq), r)
		}
	}()
	s.matchOne(ctx, item)
}

// notePanic records a contained worker panic: counted (Stats, /healthz,
// pathrank_worker_panics_total) and logged with its stack, never
// propagated.
func (s *Service) notePanic(worker, what string, r any) {
	s.mu.Lock()
	s.workerPanics++
	s.mu.Unlock()
	s.obs.workerPanics.With(worker).Inc()
	if s.cfg.Logf != nil {
		s.cfg.Logf("%s worker panic CONTAINED (%s): %v\n%s", worker, what, r, debug.Stack())
	}
}

// matchOne map-matches one trajectory and folds it into the window. The
// worker's shutdown context is threaded into the matcher, so canceling the
// service aborts a Viterbi decode (and its engine queries) in flight
// instead of draining it; the abandoned trajectory is not counted as a
// match failure.
func (s *Service) matchOne(ctx context.Context, item ingestItem) {
	path, err := s.matcher.MatchCtx(ctx, item.records)
	if err == nil {
		// Injected matcher faults land here, after the real decode: an
		// error counts like any bad trajectory, a panic is contained by
		// matchGuarded, a delay models a slow decode.
		err = fault.Check(fault.SiteMatch)
	}
	if err != nil && ctx.Err() != nil {
		return // shutdown, not a bad trajectory
	}
	if err != nil || path.Len() < s.cfg.MinHops {
		s.mu.Lock()
		s.matchFailed++
		s.mu.Unlock()
		s.obs.observations.With(obsMatchFailed).Inc()
		if err != nil && s.cfg.Logf != nil {
			s.cfg.Logf("match trajectory %d: %v", item.seq, err)
		}
		return
	}
	o := observation{seq: item.seq, path: path}
	if s.log != nil {
		// Write-ahead: the observation must be in the log before it can
		// influence training, or a crash could yield a generation trained
		// on data the log never saw. While degraded, don't hammer the
		// failing disk with every observation — park directly and let the
		// recovery loop's backoff probe the log.
		if s.degraded.Load() {
			s.park(o, nil)
			return
		}
		if _, err := s.log.Append(encodeObservation(o)); err != nil {
			s.mu.Lock()
			s.walErrors++
			s.mu.Unlock()
			s.obs.observations.With(obsWALError).Inc()
			s.park(o, err)
			return
		}
	}
	s.mu.Lock()
	s.matched++
	s.pending++
	s.windowAddLocked(o)
	s.mu.Unlock()
	s.obs.observations.With(obsMatched).Inc()
}

// park holds a matched observation whose WAL append failed (or that
// arrived while the log was already failing) in the bounded degraded
// buffer, flips the pipeline into its degraded state, and wakes the
// recovery loop. On overflow the oldest parked observation is dropped
// and counted as lost — the documented loss bound of degraded mode.
func (s *Service) park(o observation, cause error) {
	s.mu.Lock()
	if len(s.parked) >= s.cfg.DegradedBuffer {
		s.parked = s.parked[1:]
		s.parkedLost++
		s.obs.observations.With(obsLost).Inc()
	}
	s.parked = append(s.parked, o)
	if cause != nil {
		s.markDegradedLocked(fmt.Sprintf("wal append: %v", cause))
	} else if !s.degraded.Load() {
		s.markDegradedLocked("wal append failing")
	}
	s.mu.Unlock()
	s.obs.observations.With(obsParked).Inc()
	if s.cfg.Logf != nil && cause != nil {
		s.cfg.Logf("wal: append trajectory %d: %v (observation parked, pipeline degraded)", o.seq, cause)
	}
	s.kickRecovery()
}

// markDegradedLocked flips (or refreshes the reason of) the degraded
// state. Callers hold s.mu.
func (s *Service) markDegradedLocked(reason string) {
	if !s.degraded.Load() {
		s.degraded.Store(true)
		s.degradedSince = time.Now()
	}
	s.degradedReason = reason
}

// noteWALFault marks the pipeline degraded after a WAL failure outside
// the append path (a retrain-boundary fsync) and wakes the recovery
// loop; recovery clears it once a probe fsync succeeds.
func (s *Service) noteWALFault(err error) {
	s.mu.Lock()
	s.markDegradedLocked(err.Error())
	s.mu.Unlock()
	s.kickRecovery()
}

// kickRecovery wakes the recovery loop without blocking; a buffered
// token already pending means it will wake anyway.
func (s *Service) kickRecovery() {
	select {
	case s.recoverKick <- struct{}{}:
	default:
	}
}

// recoverLoop is the degraded-mode healer: woken by the first parked
// observation (or any WAL fault), it re-appends the parked backlog
// oldest-first with exponential backoff between failed probes, and
// clears the degraded state only after the backlog is drained AND a
// final fsync confirms the log is durably caught up.
func (s *Service) recoverLoop(ctx context.Context) {
	const (
		backoffMin = 100 * time.Millisecond
		backoffMax = 5 * time.Second
	)
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.recoverKick:
		}
		backoff := backoffMin
		for s.degraded.Load() {
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			if err := s.resyncStep(); err != nil {
				if backoff *= 2; backoff > backoffMax {
					backoff = backoffMax
				}
				continue
			}
			backoff = backoffMin
		}
	}
}

// resyncStep makes one unit of recovery progress: re-append the oldest
// parked observation, or — once the backlog is empty — fsync the log
// and clear the degraded state. A non-nil error means the disk is still
// failing and the caller should back off.
func (s *Service) resyncStep() error {
	s.mu.Lock()
	if len(s.parked) == 0 {
		s.mu.Unlock()
		// Drained. The log must prove it is durably healthy before the
		// service reports ready again: a successful fsync, not merely an
		// absence of parked work.
		if err := s.log.Sync(); err != nil {
			return err
		}
		s.mu.Lock()
		if len(s.parked) == 0 && s.degraded.Load() {
			s.degraded.Store(false)
			since := s.degradedSince
			s.degradedReason = ""
			s.mu.Unlock()
			if s.cfg.Logf != nil {
				s.cfg.Logf("wal: recovered, pipeline ready again (degraded for %s)",
					time.Since(since).Round(time.Millisecond))
			}
			return nil
		}
		// Raced with a fresh park between drain and fsync; keep going.
		s.mu.Unlock()
		return nil
	}
	o := s.parked[0]
	s.mu.Unlock()
	// Append outside the lock: a hung disk must not wedge Stats/Health.
	// Only this loop pops parked, so parked[0] is still o afterwards.
	if _, err := s.log.Append(encodeObservation(o)); err != nil {
		return err
	}
	s.mu.Lock()
	s.parked = s.parked[1:]
	s.matched++
	s.pending++
	s.windowAddLocked(o)
	s.mu.Unlock()
	s.obs.observations.With(obsMatched).Inc()
	return nil
}

// Health reports the pipeline's self-assessed health for /healthz: ready,
// or degraded with the fault, its duration, and the parked backlog.
func (s *Service) Health() api.PipelineHealth {
	h := api.PipelineHealth{State: api.PipelineReady}
	s.mu.Lock()
	defer s.mu.Unlock()
	h.WorkerPanics = s.workerPanics
	h.Lost = s.parkedLost
	if s.degraded.Load() {
		h.State = api.PipelineDegraded
		h.Reason = s.degradedReason
		h.DegradedForS = time.Since(s.degradedSince).Seconds()
		h.Parked = len(s.parked)
	}
	return h
}

// retrainLoop fires a retrain whenever the cadence elapses with at least
// MinObservations new observations accumulated.
func (s *Service) retrainLoop(ctx context.Context) {
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		s.mu.Lock()
		ready := s.pending >= s.cfg.MinObservations
		s.mu.Unlock()
		if !ready {
			continue
		}
		if _, err := s.RetrainNow(); err != nil && s.cfg.Logf != nil {
			s.cfg.Logf("retrain: %v", err)
		}
	}
}

// RetrainNow fine-tunes the current model on the accumulated observation
// window and installs the result as the next generation: lineage bumped
// and stamped with the window's Merkle roots, persisted atomically to
// cfg.ArtifactPath (when set), recorded in the WAL (when enabled), and
// pushed through cfg.Publish (when set). The serving model is never
// touched — training runs on a clone — and the step is deterministic: the
// window is sorted into ingest order and the fine-tune is seeded with
// Train.Seed+generation. On any error the previous generation stays
// current.
//
// Commit order under the WAL: the log is synced before training (no
// generation may cite observations that could vanish in a crash), the
// artifact is persisted, and only then is the retrain marker appended and
// synced. A crash between persist and marker therefore loses the marker,
// never the artifact — the restarted service resumes from the persisted
// generation and simply re-trains the unmarked window.
func (s *Service) RetrainNow() (*pathrank.Artifact, error) {
	s.retrainMu.Lock()
	defer s.retrainMu.Unlock()
	retrainStart := time.Now()

	s.mu.Lock()
	base := s.art
	obs := s.windowSnapshotLocked()
	prev := s.chain
	s.mu.Unlock()

	fail := func(err error) (*pathrank.Artifact, error) {
		s.mu.Lock()
		s.retrainErrors++
		s.mu.Unlock()
		s.obs.retrains.With("error").Inc()
		return nil, err
	}

	if s.log != nil {
		if err := s.log.Sync(); err != nil {
			s.noteWALFault(fmt.Errorf("wal sync before retrain: %v", err))
			return fail(fmt.Errorf("stream: sync WAL before retrain: %w", err))
		}
	}

	// The fine-tune runs under the worker panic guard: a panic in the
	// trainer (bad data, an injected fault) fails this retrain and keeps
	// the previous generation, instead of killing the retrain loop.
	out, err := func() (out *retrainOutcome, err error) {
		defer func() {
			if r := recover(); r != nil {
				s.notePanic("retrain", fmt.Sprintf("generation %d window", base.Lineage.Generation+1), r)
				out, err = nil, fmt.Errorf("stream: retrain panicked: %v", r)
			}
		}()
		return s.retrain(base, obs, prev)
	}()
	if err != nil {
		return fail(err)
	}
	art := out.art

	if s.cfg.ArtifactPath != "" {
		if err := pathrank.SaveArtifactFileAtomic(s.cfg.ArtifactPath, art); err != nil {
			return fail(err)
		}
	}
	if s.log != nil {
		payload, err := encodeRetrainMarker(out.marker)
		if err != nil {
			return fail(err)
		}
		if _, err := s.log.Append(payload); err != nil {
			s.noteWALFault(fmt.Errorf("wal retrain marker: %v", err))
			return fail(fmt.Errorf("stream: log retrain marker: %w", err))
		}
		if err := s.log.Sync(); err != nil {
			s.noteWALFault(fmt.Errorf("wal sync retrain marker: %v", err))
			return fail(fmt.Errorf("stream: sync retrain marker: %w", err))
		}
	}
	if s.cfg.Publish != nil {
		if err := s.cfg.Publish(art); err != nil {
			return fail(fmt.Errorf("stream: publish generation %d: %w", art.Lineage.Generation, err))
		}
	}

	s.mu.Lock()
	s.art = art
	s.pending = 0
	s.retrains++
	s.chain = out.batch.Chain
	s.batch = out.batch
	s.batchSeqs = out.seqs
	s.mu.Unlock()
	s.obs.retrains.With("ok").Inc()
	s.obs.retrainDuration.Observe(time.Since(retrainStart).Seconds())
	if s.cfg.Logf != nil {
		s.cfg.Logf("retrained: generation %d on %d observations (data root %s)",
			art.Lineage.Generation, len(obs), art.Lineage.DataRoot)
	}
	return art, nil
}

// retrainOutcome bundles what one retrain produced: the artifact, the
// sealed Merkle batch over its training window, the window's ingest seqs
// in training order, and the WAL marker describing the step.
type retrainOutcome struct {
	art    *pathrank.Artifact
	batch  *merkle.Batch
	seqs   []int64
	marker retrainMarker
}

// retrain produces the next-generation artifact from base and the window,
// chaining its provenance onto prev.
func (s *Service) retrain(base *pathrank.Artifact, obs []observation, prev merkle.Hash) (*retrainOutcome, error) {
	if err := fault.Check(fault.SiteRetrain); err != nil {
		return nil, fmt.Errorf("stream: retrain: %w", err)
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("stream: no observations to retrain on")
	}
	// Ingest order, not worker-completion order: determinism. The Merkle
	// leaves are sealed in the same order, so a leaf index is also a
	// training-set position.
	sort.Slice(obs, func(a, b int) bool { return obs[a].seq < obs[b].seq })
	trips := make([]traj.Trip, len(obs))
	seqs := make([]int64, len(obs))
	batcher := merkle.NewBatcher(prev)
	for i, o := range obs {
		trips[i] = traj.Trip{Path: o.path}
		seqs[i] = o.seq
		batcher.Add(encodeObservation(o))
	}
	batch := batcher.Seal()
	dcfg := base.Candidates
	if dcfg.K <= 0 {
		dcfg = dataset.DefaultConfig()
	}
	queries, err := dataset.Generate(base.Graph, trips, dcfg)
	if err != nil {
		return nil, fmt.Errorf("stream: label window: %w", err)
	}

	model, err := base.Model.Clone()
	if err != nil {
		return nil, fmt.Errorf("stream: clone model: %w", err)
	}
	tcfg := s.cfg.Train
	tcfg.Seed += int64(base.Lineage.Generation) + 1
	if _, err := model.FineTune(queries, tcfg); err != nil {
		return nil, fmt.Errorf("stream: fine-tune: %w", err)
	}

	parent, err := base.Model.FingerprintHex()
	if err != nil {
		return nil, fmt.Errorf("stream: fingerprint parent: %w", err)
	}
	result, err := model.FingerprintHex()
	if err != nil {
		return nil, fmt.Errorf("stream: fingerprint result: %w", err)
	}
	lin := base.Lineage.Child(parent, len(obs), "stream")
	lin.DataRoot = batch.Root.Hex()
	lin.ChainRoot = batch.Chain.Hex()
	art := &pathrank.Artifact{
		Graph:      base.Graph,
		Embeddings: base.Embeddings,
		Model:      model,
		Candidates: base.Candidates,
		// The road network is unchanged across a fine-tune, so the parent's
		// speedup structures stay exactly valid: every generation inherits
		// them instead of re-preprocessing, and the serve layer's snapshot
		// reuses the same engine across the hot swap.
		Prep:    base.Prep,
		Lineage: lin,
	}
	return &retrainOutcome{
		art:   art,
		batch: batch,
		seqs:  seqs,
		marker: retrainMarker{
			Generation: lin.Generation,
			Parent:     parent,
			Result:     result,
			DataRoot:   lin.DataRoot,
			ChainRoot:  lin.ChainRoot,
			WindowSeqs: seqs,
			Epochs:     tcfg.Epochs,
			LR:         tcfg.LR,
			ClipNorm:   tcfg.ClipNorm,
			LRDecay:    tcfg.LRDecay,
			Seed:       tcfg.Seed,
		},
	}, nil
}

// Provenance reports the provenance commitments of the current generation
// and, when the WAL is enabled, the state of the trajectory log.
func (s *Service) Provenance() api.ProvenanceInfo {
	s.mu.Lock()
	info := api.ProvenanceInfo{
		Generation: s.art.Lineage.Generation,
		DataRoot:   s.art.Lineage.DataRoot,
		ChainRoot:  s.art.Lineage.ChainRoot,
	}
	if s.batch != nil {
		info.BatchSize = len(s.batchSeqs)
	}
	walErrors := s.walErrors
	s.mu.Unlock()
	if s.log != nil {
		st := s.log.Stats()
		ws := &api.WALStatus{
			Segments:         st.Segments,
			LastIndex:        st.LastIndex,
			SyncedIndex:      st.SyncedIndex,
			FsyncPolicy:      s.walPolicy().String(),
			Fsyncs:           st.Syncs,
			RecoveredRecords: st.Recovered,
			TornBytes:        st.TornBytes,
			AppendErrors:     walErrors,
		}
		if st.Syncs > 0 {
			ws.FsyncMeanUs = float64(st.SyncNanos) / float64(st.Syncs) / 1e3
		}
		info.WAL = ws
	}
	return info
}

// walPolicy resolves the configured fsync policy (Config validation in
// openWAL guarantees it parses).
func (s *Service) walPolicy() wal.SyncPolicy {
	if s.cfg.WALFsync == "" {
		return wal.SyncBatch
	}
	p, err := wal.ParseSyncPolicy(s.cfg.WALFsync)
	if err != nil {
		return wal.SyncBatch
	}
	return p
}

// ErrNoProof reports that no inclusion proof is available for a sequence
// number: the trajectory is not in the current generation's training
// batch (not yet trained on, evicted before the batch sealed, or the
// batch predates this process — proofs cover live batches only).
var ErrNoProof = errors.New("stream: no inclusion proof for that trajectory in the current generation")

// ProveTrajectory issues a Merkle inclusion proof that the observation
// with ingest sequence seq is in the current generation's training batch.
func (s *Service) ProveTrajectory(seq int64) (api.InclusionProof, error) {
	s.mu.Lock()
	batch := s.batch
	seqs := s.batchSeqs
	gen := s.art.Lineage.Generation
	s.mu.Unlock()
	if batch == nil {
		return api.InclusionProof{}, ErrNoProof
	}
	// batchSeqs is sorted ascending (training order), so the leaf index is
	// a binary search away.
	i := sort.Search(len(seqs), func(i int) bool { return seqs[i] >= seq })
	if i >= len(seqs) || seqs[i] != seq {
		return api.InclusionProof{}, ErrNoProof
	}
	proof, err := batch.Prove(i)
	if err != nil {
		return api.InclusionProof{}, err
	}
	path := make([]string, len(proof.Path))
	for j, h := range proof.Path {
		path[j] = h.Hex()
	}
	return api.InclusionProof{
		Seq:        seq,
		Generation: gen,
		Index:      proof.Index,
		BatchSize:  proof.Leaves,
		LeafHash:   batch.Leaves[i].Hex(),
		Path:       path,
		DataRoot:   batch.Root.Hex(),
		ChainRoot:  batch.Chain.Hex(),
	}, nil
}
