// Package stream turns the offline train→artifact→serve chain into a live
// loop. Raw GPS trajectories enter through a bounded ingest queue
// (backpressure instead of unbounded memory growth), map-matching workers
// recover network paths from them with the HMM matcher in internal/traj,
// and an incremental trainer periodically fine-tunes the current model on
// the accumulated observation window — warm-starting from the serving
// weights with deterministic seeding, so the same ingest sequence always
// produces the same chain of artifacts. Each retrain emits a new
// lineage-stamped artifact: persisted atomically to disk (where the serve
// layer's watcher picks it up) and/or pushed directly through a publish
// hook (the serve layer's hot swap).
//
// The package deliberately does not import internal/serve: the server
// consumes a Service through the serve.Ingestor interface, and the Service
// reaches the server through the Publish callback, so either side can be
// run and tested without the other.
package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pathrank/internal/dataset"
	"pathrank/internal/pathrank"
	"pathrank/internal/spath"
	"pathrank/internal/traj"
)

// ErrBacklog reports a full ingest queue; the caller should retry later.
// The serve layer maps it to 503.
var ErrBacklog = errors.New("stream: ingest queue full")

// Config parameterizes the live pipeline.
type Config struct {
	// QueueSize bounds the ingest queue in trajectories (default 256).
	// When full, IngestGPS fails fast with ErrBacklog.
	QueueSize int
	// Workers is the number of map-matching workers (default 2). Matching
	// is CPU-bound Viterbi decoding, so a couple of workers keep up with
	// substantial ingest rates without starving the serving path.
	Workers int
	// Window bounds the retained observation window in matched paths
	// (default 1024). Older observations are evicted first.
	Window int
	// MinObservations is how many new observations must accumulate before
	// a periodic retrain fires (default 16). RetrainNow ignores it.
	MinObservations int
	// Interval is the periodic retrain cadence; 0 disables the timer
	// (retraining then only happens through RetrainNow).
	Interval time.Duration
	// MinHops discards matched paths with fewer edges (default 2): a
	// trajectory that collapses to a point or a single hop carries no
	// ranking signal.
	MinHops int
	// Match parameterizes the HMM map matcher; zero-valued fields use
	// traj.DefaultMatchConfig.
	Match traj.MatchConfig
	// Engine selects the matcher's shortest-path backend ("ch", "alt",
	// "dijkstra"; "" defaults to ch). The artifact's persisted structure is
	// used when it matches the requested kind; otherwise the engine is
	// built at service construction. The serve layer passes its own engine
	// flag through, so "-engine dijkstra" genuinely avoids preprocessing.
	Engine string
	// Train parameterizes each fine-tune step; zero-valued fields fall
	// back to pathrank.DefaultFineTuneConfig. Train.Seed is the base seed:
	// generation g trains with Seed+g, which keeps every step deterministic
	// while decorrelating the shuffles of successive generations.
	Train pathrank.TrainConfig
	// ArtifactPath, when set, receives every new generation as an
	// atomically renamed artifact bundle.
	ArtifactPath string
	// Publish, when non-nil, is invoked with every new generation (the
	// serve layer wires it to Server.Swap). A publish error fails the
	// retrain; the pipeline keeps the previous generation.
	Publish func(*pathrank.Artifact) error
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// observation is one map-matched trajectory. seq is the ingest sequence
// number: the window is sorted by it before training, so the training set
// order — and with it the seeded shuffle — is independent of worker
// scheduling.
type observation struct {
	seq  int64
	path spath.Path
}

// Stats is a point-in-time snapshot of pipeline counters.
type Stats struct {
	QueueDepth    int
	Received      int64
	Dropped       int64 // rejected with ErrBacklog
	Matched       int64
	MatchFailed   int64
	WindowSize    int
	PendingTrain  int // new observations since the last retrain
	Generation    int
	Retrains      int64
	RetrainErrors int64
}

// Service is the live pipeline: ingest queue, map-matching workers, and
// the incremental retrainer. Create it with New; IngestGPS, RetrainNow,
// Stats, and Artifact are safe for concurrent use.
type Service struct {
	cfg     Config
	matcher *traj.Matcher
	queue   chan ingestItem

	// retrainMu serializes retrains so two triggers cannot both fine-tune
	// from the same parent and race to publish.
	retrainMu sync.Mutex

	mu            sync.Mutex
	art           *pathrank.Artifact
	window        []observation
	seq           int64
	pending       int // new observations since last retrain
	received      int64
	dropped       int64
	matched       int64
	matchFailed   int64
	retrains      int64
	retrainErrors int64
}

type ingestItem struct {
	seq     int64
	records []traj.GPSRecord
}

// New builds a Service that evolves art. The artifact's graph anchors the
// map matcher; its model is never mutated — each retrain fine-tunes a
// clone, so the artifact handed in (and every one published) can keep
// serving traffic while the next generation trains.
func New(art *pathrank.Artifact, cfg Config) (*Service, error) {
	if art == nil || art.Graph == nil || art.Model == nil {
		return nil, fmt.Errorf("stream: artifact needs a graph and a model")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 1024
	}
	if cfg.MinObservations <= 0 {
		cfg.MinObservations = 16
	}
	if cfg.MinHops <= 0 {
		cfg.MinHops = 2
	}
	// Per-field matcher defaults, so a caller overriding only SigmaM (say,
	// for noisier receivers) keeps the defaults for the rest. NewMatcher
	// also defaults Candidates/SigmaM/BetaM, but not StrideSec — and an
	// unsubsampled 1 Hz stream makes Viterbi decoding needlessly slow.
	def := traj.DefaultMatchConfig()
	if cfg.Match.Candidates <= 0 {
		cfg.Match.Candidates = def.Candidates
	}
	if cfg.Match.SigmaM <= 0 {
		cfg.Match.SigmaM = def.SigmaM
	}
	if cfg.Match.BetaM <= 0 {
		cfg.Match.BetaM = def.BetaM
	}
	if cfg.Match.StrideSec <= 0 {
		cfg.Match.StrideSec = def.StrideSec
	}
	// The matcher routes on the artifact's persisted speedup structures
	// when they back the requested engine kind (zero preprocessing at
	// service start); otherwise the engine is built here once and every
	// matching worker amortizes it.
	kind := spath.EngineCH
	if cfg.Engine != "" {
		var err error
		if kind, err = spath.ParseEngineKind(cfg.Engine); err != nil {
			return nil, fmt.Errorf("stream: %w", err)
		}
	}
	engine := art.Prep.Engine(kind, art.Graph)
	if engine == nil {
		engine = spath.NewEngine(kind, art.Graph, spath.ByLength, spath.EngineConfig{})
	}
	return &Service{
		cfg:     cfg,
		matcher: traj.NewMatcherEngine(art.Graph, cfg.Match, engine),
		queue:   make(chan ingestItem, cfg.QueueSize),
		art:     art,
	}, nil
}

// IngestGPS enqueues one raw trajectory for asynchronous map matching. It
// never blocks: when the queue is full it fails fast with ErrBacklog so
// the caller (an HTTP handler under load) can shed instead of stall.
func (s *Service) IngestGPS(records []traj.GPSRecord) error {
	if len(records) == 0 {
		return fmt.Errorf("stream: empty trajectory")
	}
	s.mu.Lock()
	s.seq++
	item := ingestItem{seq: s.seq, records: records}
	s.mu.Unlock()
	select {
	case s.queue <- item:
		s.mu.Lock()
		s.received++
		s.mu.Unlock()
		return nil
	default:
		s.mu.Lock()
		s.dropped++
		s.mu.Unlock()
		return ErrBacklog
	}
}

// Artifact returns the newest generation.
func (s *Service) Artifact() *pathrank.Artifact {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.art
}

// Stats returns a snapshot of the pipeline counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		QueueDepth:    len(s.queue),
		Received:      s.received,
		Dropped:       s.dropped,
		Matched:       s.matched,
		MatchFailed:   s.matchFailed,
		WindowSize:    len(s.window),
		PendingTrain:  s.pending,
		Generation:    s.art.Lineage.Generation,
		Retrains:      s.retrains,
		RetrainErrors: s.retrainErrors,
	}
}

// Run starts the map-matching workers and, when cfg.Interval > 0, the
// periodic retrain loop. It blocks until ctx is canceled and all workers
// have stopped.
func (s *Service) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.matchLoop(ctx)
		}()
	}
	if s.cfg.Interval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.retrainLoop(ctx)
		}()
	}
	wg.Wait()
	return nil
}

// matchLoop drains the ingest queue, recovering network paths.
func (s *Service) matchLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case item := <-s.queue:
			s.matchOne(ctx, item)
		}
	}
}

// matchOne map-matches one trajectory and folds it into the window. The
// worker's shutdown context is threaded into the matcher, so canceling the
// service aborts a Viterbi decode (and its engine queries) in flight
// instead of draining it; the abandoned trajectory is not counted as a
// match failure.
func (s *Service) matchOne(ctx context.Context, item ingestItem) {
	path, err := s.matcher.MatchCtx(ctx, item.records)
	if err != nil && ctx.Err() != nil {
		return // shutdown, not a bad trajectory
	}
	if err != nil || path.Len() < s.cfg.MinHops {
		s.mu.Lock()
		s.matchFailed++
		s.mu.Unlock()
		if err != nil && s.cfg.Logf != nil {
			s.cfg.Logf("match trajectory %d: %v", item.seq, err)
		}
		return
	}
	s.mu.Lock()
	s.matched++
	s.pending++
	s.window = append(s.window, observation{seq: item.seq, path: path})
	if len(s.window) > s.cfg.Window {
		// Evict the oldest observation (smallest sequence number).
		oldest := 0
		for i := range s.window {
			if s.window[i].seq < s.window[oldest].seq {
				oldest = i
			}
		}
		s.window[oldest] = s.window[len(s.window)-1]
		s.window = s.window[:len(s.window)-1]
	}
	s.mu.Unlock()
}

// retrainLoop fires a retrain whenever the cadence elapses with at least
// MinObservations new observations accumulated.
func (s *Service) retrainLoop(ctx context.Context) {
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		s.mu.Lock()
		ready := s.pending >= s.cfg.MinObservations
		s.mu.Unlock()
		if !ready {
			continue
		}
		if _, err := s.RetrainNow(); err != nil && s.cfg.Logf != nil {
			s.cfg.Logf("retrain: %v", err)
		}
	}
}

// RetrainNow fine-tunes the current model on the accumulated observation
// window and installs the result as the next generation: lineage bumped,
// persisted atomically to cfg.ArtifactPath (when set), and pushed through
// cfg.Publish (when set). The serving model is never touched — training
// runs on a clone — and the step is deterministic: the window is sorted
// into ingest order and the fine-tune is seeded with Train.Seed+generation.
// On any error the previous generation stays current.
func (s *Service) RetrainNow() (*pathrank.Artifact, error) {
	s.retrainMu.Lock()
	defer s.retrainMu.Unlock()

	s.mu.Lock()
	base := s.art
	obs := make([]observation, len(s.window))
	copy(obs, s.window)
	s.mu.Unlock()

	art, err := s.retrain(base, obs)
	if err != nil {
		s.mu.Lock()
		s.retrainErrors++
		s.mu.Unlock()
		return nil, err
	}

	if s.cfg.ArtifactPath != "" {
		if err := pathrank.SaveArtifactFileAtomic(s.cfg.ArtifactPath, art); err != nil {
			s.mu.Lock()
			s.retrainErrors++
			s.mu.Unlock()
			return nil, err
		}
	}
	if s.cfg.Publish != nil {
		if err := s.cfg.Publish(art); err != nil {
			s.mu.Lock()
			s.retrainErrors++
			s.mu.Unlock()
			return nil, fmt.Errorf("stream: publish generation %d: %w", art.Lineage.Generation, err)
		}
	}

	s.mu.Lock()
	s.art = art
	s.pending = 0
	s.retrains++
	s.mu.Unlock()
	if s.cfg.Logf != nil {
		s.cfg.Logf("retrained: generation %d on %d observations", art.Lineage.Generation, len(obs))
	}
	return art, nil
}

// retrain produces the next-generation artifact from base and the window.
func (s *Service) retrain(base *pathrank.Artifact, obs []observation) (*pathrank.Artifact, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("stream: no observations to retrain on")
	}
	// Ingest order, not worker-completion order: determinism.
	sort.Slice(obs, func(a, b int) bool { return obs[a].seq < obs[b].seq })
	trips := make([]traj.Trip, len(obs))
	for i, o := range obs {
		trips[i] = traj.Trip{Path: o.path}
	}
	dcfg := base.Candidates
	if dcfg.K <= 0 {
		dcfg = dataset.DefaultConfig()
	}
	queries, err := dataset.Generate(base.Graph, trips, dcfg)
	if err != nil {
		return nil, fmt.Errorf("stream: label window: %w", err)
	}

	model, err := base.Model.Clone()
	if err != nil {
		return nil, fmt.Errorf("stream: clone model: %w", err)
	}
	tcfg := s.cfg.Train
	tcfg.Seed += int64(base.Lineage.Generation) + 1
	if _, err := model.FineTune(queries, tcfg); err != nil {
		return nil, fmt.Errorf("stream: fine-tune: %w", err)
	}

	parent, err := base.Model.FingerprintHex()
	if err != nil {
		return nil, fmt.Errorf("stream: fingerprint parent: %w", err)
	}
	return &pathrank.Artifact{
		Graph:      base.Graph,
		Embeddings: base.Embeddings,
		Model:      model,
		Candidates: base.Candidates,
		// The road network is unchanged across a fine-tune, so the parent's
		// speedup structures stay exactly valid: every generation inherits
		// them instead of re-preprocessing, and the serve layer's snapshot
		// reuses the same engine across the hot swap.
		Prep:    base.Prep,
		Lineage: base.Lineage.Child(parent, len(obs), "stream"),
	}, nil
}
