package stream

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"pathrank/internal/dataset"
	"pathrank/internal/merkle"
	"pathrank/internal/pathrank"
	"pathrank/internal/traj"
)

// ingestAll runs the service's workers just long enough to push streams
// through map matching.
func ingestAll(t *testing.T, svc *Service, streams [][]traj.GPSRecord) {
	t.Helper()
	before := svc.Stats()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = svc.Run(ctx) }()
	defer func() { cancel(); <-done }()
	for _, recs := range streams {
		if err := svc.IngestGPS(recs); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 30*time.Second, func() bool {
		st := svc.Stats()
		return st.Matched+st.MatchFailed+st.WALErrors-before.Matched-before.MatchFailed-before.WALErrors == int64(len(streams))
	}, "trajectories processed")
}

// sortedWindow returns the service's window sorted by seq.
func sortedWindow(svc *Service) []observation {
	svc.mu.Lock()
	w := svc.windowSnapshotLocked()
	svc.mu.Unlock()
	sort.Slice(w, func(a, b int) bool { return w[a].seq < w[b].seq })
	return w
}

func fingerprint(t *testing.T, art *pathrank.Artifact) string {
	t.Helper()
	fp, err := art.Model.FingerprintHex()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestWALWindowRecovery proves a restarted service rebuilds its window
// from the log: same observations, same seqs, same paths, and the ingest
// sequence resumes past everything logged.
func TestWALWindowRecovery(t *testing.T) {
	art, trips := testWorld(t)
	dir := t.TempDir()
	cfg := Config{QueueSize: 16, Workers: 2, WALDir: dir}

	svc1, err := New(art, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, svc1, sampleTrajectories(art, trips[:4], 400))
	w1 := sortedWindow(svc1)
	if len(w1) == 0 {
		t.Fatal("no observations matched; cannot exercise recovery")
	}
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}

	svc2, err := New(art, cfg)
	if err != nil {
		t.Fatalf("reopen with WAL: %v", err)
	}
	defer svc2.Close()
	w2 := sortedWindow(svc2)
	if len(w2) != len(w1) {
		t.Fatalf("recovered window has %d observations, want %d", len(w2), len(w1))
	}
	for i := range w1 {
		if w2[i].seq != w1[i].seq || !pathEqual(w2[i].path, w1[i].path) {
			t.Fatalf("recovered observation %d differs: seq %d vs %d", i, w2[i].seq, w1[i].seq)
		}
	}
	st := svc2.Stats()
	if st.Recovered != len(w1) {
		t.Fatalf("Stats.Recovered = %d, want %d", st.Recovered, len(w1))
	}
	if st.PendingTrain != len(w1) {
		t.Fatalf("PendingTrain = %d, want %d (no retrain marker in the log)", st.PendingTrain, len(w1))
	}
	// New ingests must continue the sequence past everything recovered.
	ingestAll(t, svc2, sampleTrajectories(art, trips[4:5], 410))
	maxSeq := w1[len(w1)-1].seq
	w3 := sortedWindow(svc2)
	if last := w3[len(w3)-1]; len(w3) != len(w1)+1 || last.seq <= maxSeq {
		t.Fatalf("post-recovery ingest got seq %d, want > %d", last.seq, maxSeq)
	}
}

// TestWALTornTailRecovery proves a torn final write (a crash mid-append)
// costs exactly the torn bytes: the service reopens, keeps every intact
// observation, and reports the damage.
func TestWALTornTailRecovery(t *testing.T) {
	art, trips := testWorld(t)
	dir := t.TempDir()
	cfg := Config{QueueSize: 16, Workers: 2, WALDir: dir}

	svc1, err := New(art, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, svc1, sampleTrajectories(art, trips[:3], 420))
	w1 := sortedWindow(svc1)
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: a partial frame that a crash mid-write would leave.
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0x00, 0x00, 0x01} // looks like the start of a length field
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	svc2, err := New(art, cfg)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer svc2.Close()
	w2 := sortedWindow(svc2)
	if len(w2) != len(w1) {
		t.Fatalf("recovered %d observations after torn tail, want %d", len(w2), len(w1))
	}
	info := svc2.Provenance()
	if info.WAL == nil {
		t.Fatal("Provenance().WAL is nil with the WAL enabled")
	}
	if info.WAL.TornBytes != int64(len(torn)) {
		t.Fatalf("TornBytes = %d, want %d", info.WAL.TornBytes, len(torn))
	}
}

// TestDeterministicReplay is the acceptance test for the durable loop:
// replaying the WAL of a live two-generation run against the base
// artifact reproduces each generation's model fingerprint bit-for-bit,
// plus the Merkle data and chain roots stamped into its lineage.
func TestDeterministicReplay(t *testing.T) {
	art, trips := testWorld(t)
	walDir := t.TempDir()
	cfg := Config{
		QueueSize: 16, Workers: 3, WALDir: walDir,
		Train: pathrank.TrainConfig{Epochs: 1, LR: 0.002, Seed: 9},
	}
	svc, err := New(art, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ingestAll(t, svc, sampleTrajectories(art, trips[:4], 500))
	gen1, err := svc.RetrainNow()
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, svc, sampleTrajectories(art, trips[4:8], 600))
	gen2, err := svc.RetrainNow()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	fp1, fp2 := fingerprint(t, gen1), fingerprint(t, gen2)
	if gen2.Lineage.DataRoot == "" || gen2.Lineage.ChainRoot == "" {
		t.Fatalf("lineage missing provenance roots: %+v", gen2.Lineage)
	}

	// Full replay from the offline base.
	res, err := Replay(walDir, art, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("replay not verified: %v", res.Mismatches)
	}
	if res.Generations != 2 || res.SkippedMarkers != 0 {
		t.Fatalf("replayed %d generations (%d skipped), want 2 (0 skipped)", res.Generations, res.SkippedMarkers)
	}
	if got := fingerprint(t, res.Artifact); got != fp2 {
		t.Fatalf("replayed fingerprint %s != live %s", got, fp2)
	}
	if res.Artifact.Lineage.DataRoot != gen2.Lineage.DataRoot ||
		res.Artifact.Lineage.ChainRoot != gen2.Lineage.ChainRoot {
		t.Fatalf("replayed lineage roots differ: %+v vs %+v", res.Artifact.Lineage, gen2.Lineage)
	}

	// Bounded replay stops at the target generation.
	res1, err := Replay(walDir, art, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Generations != 1 || fingerprint(t, res1.Artifact) != fp1 {
		t.Fatalf("targeted replay produced generation %d fingerprint %s, want 1 / %s",
			res1.Generations, fingerprint(t, res1.Artifact), fp1)
	}

	// Replaying from a mid-chain artifact skips the markers it already
	// embodies and continues from there.
	resMid, err := Replay(walDir, gen1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resMid.Generations != 1 || resMid.SkippedMarkers != 1 {
		t.Fatalf("mid-chain replay: %d generations, %d skipped, want 1/1", resMid.Generations, resMid.SkippedMarkers)
	}
	if got := fingerprint(t, resMid.Artifact); got != fp2 {
		t.Fatalf("mid-chain replayed fingerprint %s != live %s", got, fp2)
	}

	// A wrong base artifact is detected, not silently replayed over.
	if _, err := Replay(walDir, gen2, 0, nil); err == nil {
		// gen2's next marker would be generation 3, which does not exist:
		// replay just finds nothing to do. That is fine. But replaying onto
		// a base whose parent fingerprint cannot chain must error; build
		// that case by handing gen1's lineage with gen2's model.
		wrong := *gen1
		wrong.Model = gen2.Model
		if _, err := Replay(walDir, &wrong, 0, nil); err == nil {
			t.Fatal("replay chained a marker onto the wrong parent model")
		}
	}
}

// TestKillMidRetrain simulates dying between persisting a generation and
// publishing it: the artifact and retrain marker are durable, the
// in-memory pipeline is gone. A service restarted from the persisted
// artifact and the WAL must end up on the same lineage chain and the same
// final model as a run that never crashed.
func TestKillMidRetrain(t *testing.T) {
	art, trips := testWorld(t)
	batchA := sampleTrajectories(art, trips[:4], 700)
	batchB := sampleTrajectories(art, trips[4:8], 710)
	train := pathrank.TrainConfig{Epochs: 1, LR: 0.002, Seed: 9}

	// Control: the same ingest schedule with no crash.
	ctrlDir := t.TempDir()
	ctrl, err := New(art, Config{QueueSize: 16, Workers: 2, WALDir: ctrlDir, Train: train})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, ctrl, batchA)
	if _, err := ctrl.RetrainNow(); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, ctrl, batchB)
	ctrlGen2, err := ctrl.RetrainNow()
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Close()

	// Crashing run: publish fails after the artifact and marker are on
	// disk, exactly the state a kill between persist and swap leaves.
	walDir := t.TempDir()
	artPath := filepath.Join(t.TempDir(), "live.pathrank")
	boom := errors.New("killed")
	svc1, err := New(art, Config{
		QueueSize: 16, Workers: 2, WALDir: walDir, ArtifactPath: artPath, Train: train,
		Publish: func(a *pathrank.Artifact) error { return boom },
	})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, svc1, batchA)
	if _, err := svc1.RetrainNow(); !errors.Is(err, boom) {
		t.Fatalf("RetrainNow error = %v, want the publish failure", err)
	}
	if g := svc1.Artifact().Lineage.Generation; g != 0 {
		t.Fatalf("failed retrain advanced the in-memory generation to %d", g)
	}
	svc1.Close()

	// Restart from what survived: the persisted artifact plus the WAL.
	persisted, err := pathrank.LoadArtifactFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	if persisted.Lineage.Generation != 1 {
		t.Fatalf("persisted artifact is generation %d, want 1", persisted.Lineage.Generation)
	}
	if persisted.Lineage.DataRoot == "" || persisted.Lineage.ChainRoot == "" {
		t.Fatalf("persisted lineage missing provenance roots: %+v", persisted.Lineage)
	}
	svc2, err := New(persisted, Config{QueueSize: 16, Workers: 2, WALDir: walDir, Train: train})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	st := svc2.Stats()
	if st.Recovered == 0 {
		t.Fatal("restart recovered nothing from the WAL")
	}
	if st.PendingTrain != 0 {
		t.Fatalf("PendingTrain = %d after restart, want 0 (marker closed the window)", st.PendingTrain)
	}
	// The rebuilt window must match the control's at the same point.
	ctrlAfterA, err := Replay(ctrlDir, art, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, persisted); got != fingerprint(t, ctrlAfterA.Artifact) {
		t.Fatal("crashed run's persisted generation 1 differs from the control's")
	}

	ingestAll(t, svc2, batchB)
	gen2, err := svc2.RetrainNow()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, gen2), fingerprint(t, ctrlGen2); got != want {
		t.Fatalf("post-crash generation 2 fingerprint %s != control %s", got, want)
	}
	if gen2.Lineage.ChainRoot != ctrlGen2.Lineage.ChainRoot || gen2.Lineage.DataRoot != ctrlGen2.Lineage.DataRoot {
		t.Fatalf("post-crash lineage chain diverged: %+v vs %+v", gen2.Lineage, ctrlGen2.Lineage)
	}
	if gen2.Lineage.Parent != fingerprint(t, persisted) {
		t.Fatal("generation 2 does not chain to the recovered generation 1")
	}
}

// TestProvenanceProofs covers the Merkle side: every trajectory of the
// training batch gets a verifiable inclusion proof against the lineage's
// data root, and unknown seqs fail closed.
func TestProvenanceProofs(t *testing.T) {
	art, trips := testWorld(t)
	svc, err := New(art, Config{QueueSize: 16, Workers: 2, Train: pathrank.TrainConfig{Epochs: 1, LR: 0.002, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	// Before any retrain: no batch, no proofs, no roots.
	info := svc.Provenance()
	if info.DataRoot != "" || info.ChainRoot != "" || info.WAL != nil {
		t.Fatalf("fresh service provenance not empty: %+v", info)
	}
	if _, err := svc.ProveTrajectory(1); !errors.Is(err, ErrNoProof) {
		t.Fatalf("proof before any batch: %v, want ErrNoProof", err)
	}

	ingestAll(t, svc, sampleTrajectories(art, trips[:4], 800))
	gen1, err := svc.RetrainNow()
	if err != nil {
		t.Fatal(err)
	}
	info = svc.Provenance()
	if info.Generation != 1 || info.DataRoot != gen1.Lineage.DataRoot || info.ChainRoot != gen1.Lineage.ChainRoot {
		t.Fatalf("provenance does not mirror the lineage: %+v vs %+v", info, gen1.Lineage)
	}
	if info.BatchSize != gen1.Lineage.TrainedOn {
		t.Fatalf("BatchSize = %d, want %d", info.BatchSize, gen1.Lineage.TrainedOn)
	}

	svc.mu.Lock()
	seqs := append([]int64(nil), svc.batchSeqs...)
	svc.mu.Unlock()
	for _, seq := range seqs {
		p, err := svc.ProveTrajectory(seq)
		if err != nil {
			t.Fatalf("prove seq %d: %v", seq, err)
		}
		leaf, err := merkle.ParseHash(p.LeafHash)
		if err != nil {
			t.Fatal(err)
		}
		root, err := merkle.ParseHash(p.DataRoot)
		if err != nil {
			t.Fatal(err)
		}
		mp := merkle.Proof{Index: p.Index, Leaves: p.BatchSize}
		for _, h := range p.Path {
			ph, err := merkle.ParseHash(h)
			if err != nil {
				t.Fatal(err)
			}
			mp.Path = append(mp.Path, ph)
		}
		if !mp.Verify(leaf, root) {
			t.Fatalf("inclusion proof for seq %d does not verify", seq)
		}
		if p.DataRoot != gen1.Lineage.DataRoot || p.ChainRoot != gen1.Lineage.ChainRoot {
			t.Fatalf("proof roots do not match the lineage: %+v", p)
		}
	}
	if _, err := svc.ProveTrajectory(seqs[len(seqs)-1] + 1000); !errors.Is(err, ErrNoProof) {
		t.Fatalf("proof for unknown seq: %v, want ErrNoProof", err)
	}
}

// TestWALConfigValidation pins down the config errors.
func TestWALConfigValidation(t *testing.T) {
	art, _ := testWorld(t)
	if _, err := New(art, Config{WALDir: t.TempDir(), WALFsync: "sometimes"}); err == nil {
		t.Fatal("bad WALFsync accepted")
	}
	if _, err := New(art, Config{WALDir: t.TempDir(), Train: pathrank.TrainConfig{Validation: make([]dataset.Query, 1)}}); err == nil {
		t.Fatal("Train.Validation with a WAL accepted")
	}
}
