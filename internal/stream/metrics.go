package stream

import (
	"pathrank/internal/obsv"
)

// Observation-outcome label values of pathrank_stream_observations_total.
// The label set is fixed so dashboards can enumerate it.
const (
	obsMatched     = "matched"
	obsMatchFailed = "match_failed"
	obsDropped     = "dropped"
	obsWALError    = "wal_error"
	obsParked      = "parked"
	obsLost        = "lost"
)

// streamMetrics is the pipeline's Prometheus-format instrumentation. One
// instance per Service, registered on either the caller-supplied registry
// (Config.Metrics — pathrank-serve shares one registry between the server
// and the pipeline so GET /metrics exports both) or a private one.
type streamMetrics struct {
	// observations counts ingested trajectories by outcome: matched into
	// the window, match_failed (HMM decode failure or too few hops),
	// dropped (queue full), wal_error (append failed), parked (held in the
	// degraded buffer awaiting re-sync; counted matched once drained), or
	// lost (dropped on parking-buffer overflow — degraded mode's loss
	// bound).
	observations *obsv.CounterVec
	// workerPanics counts contained worker panics by worker ("match",
	// "retrain"): each one recovered and logged, the worker kept running.
	workerPanics *obsv.CounterVec
	// retrains counts retrain attempts by result; retrainDuration is the
	// end-to-end latency of successful retrains (sync, fine-tune, persist,
	// marker, publish).
	retrains        *obsv.CounterVec
	retrainDuration obsv.Histogram
	// walFsync is the latency distribution of WAL fsync batches; its
	// _count is the total number of fsyncs. Empty with the WAL disabled.
	walFsync obsv.Histogram
}

// newStreamMetrics registers the pipeline's metric families on reg and
// wires the scrape-time gauges to s. Called from New before the workers
// start, so every field s reads is settled by scrape time.
func newStreamMetrics(reg *obsv.Registry, s *Service) *streamMetrics {
	m := &streamMetrics{}
	m.observations = reg.Counter("pathrank_stream_observations_total",
		"Ingested trajectories by outcome: matched, match_failed, dropped, wal_error, parked, or lost.",
		"result")
	m.workerPanics = reg.Counter("pathrank_worker_panics_total",
		"Contained worker panics by worker (match, retrain); each worker recovered and kept running.",
		"worker")
	m.retrains = reg.Counter("pathrank_retrains_total",
		"Retrain attempts by result: ok or error.", "result")
	m.retrainDuration = reg.Histogram("pathrank_retrain_duration_seconds",
		"End-to-end latency of successful retrains in seconds.",
		[]float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120}).With()
	m.walFsync = reg.Histogram("pathrank_wal_fsync_duration_seconds",
		"WAL fsync batch latency in seconds.", nil).With()

	reg.GaugeFunc("pathrank_stream_queue_depth",
		"Trajectories waiting in the ingest queue.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("pathrank_stream_window_size",
		"Matched observations in the training window.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.window))
		})
	reg.GaugeFunc("pathrank_stream_pending_observations",
		"New observations accumulated since the last retrain.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.pending)
		})
	reg.GaugeFunc("pathrank_pipeline_degraded",
		"1 while the pipeline is in degraded mode (WAL failing, observations parked), else 0.",
		func() float64 {
			if s.degraded.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("pathrank_stream_parked_observations",
		"Matched observations parked in the degraded buffer awaiting WAL re-sync.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.parked))
		})
	reg.GaugeFunc("pathrank_wal_segments",
		"Segment files in the trajectory WAL (0 when disabled).",
		func() float64 {
			if s.log == nil {
				return 0
			}
			return float64(s.log.Stats().Segments)
		})
	reg.GaugeFunc("pathrank_wal_unsynced_records",
		"WAL records appended but not yet fsynced (0 when disabled).",
		func() float64 {
			if s.log == nil {
				return 0
			}
			st := s.log.Stats()
			return float64(st.LastIndex - st.SyncedIndex)
		})
	return m
}
