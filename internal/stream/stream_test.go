package stream

import (
	"context"
	"sync"
	"testing"
	"time"

	"pathrank/internal/dataset"
	"pathrank/internal/geo"
	"pathrank/internal/node2vec"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/traj"
)

var (
	worldOnce sync.Once
	worldErr  error
	worldArt  *pathrank.Artifact
	worldTrip []traj.Trip
)

// testWorld builds one small trained artifact and a set of trips whose GPS
// samples feed the ingest tests. Built once: training dominates the
// package's test time.
func testWorld(t testing.TB) (*pathrank.Artifact, []traj.Trip) {
	t.Helper()
	worldOnce.Do(func() {
		g, err := roadnet.Generate(roadnet.GenConfig{
			Rows: 8, Cols: 8, SpacingM: 250, JitterFrac: 0.15,
			RemoveFrac: 0.05, ArterialEvery: 4, Motorway: false,
			Origin: geo.Point{Lon: 10, Lat: 57}, Seed: 21,
		})
		if err != nil {
			worldErr = err
			return
		}
		drivers := traj.NewPopulation(traj.PopulationConfig{NumDrivers: 4, Seed: 22})
		trips, err := traj.GenerateTrips(g, drivers, traj.TripConfig{TripsPerDriver: 3, MinHops: 5, Seed: 23})
		if err != nil {
			worldErr = err
			return
		}
		mcfg := pathrank.Config{EmbeddingDim: 8, Hidden: 6, Variant: pathrank.PRA2, Body: pathrank.GRUBody, Seed: 3}
		model, err := pathrank.New(g.NumVertices(), mcfg)
		if err != nil {
			worldErr = err
			return
		}
		emb := node2vec.Embed(g, node2vec.DefaultWalkConfig(), node2vec.DefaultTrainConfig(mcfg.EmbeddingDim))
		if err := model.InitEmbeddings(emb); err != nil {
			worldErr = err
			return
		}
		dcfg := dataset.Config{Strategy: dataset.TkDI, K: 3, IncludeTruth: true}
		queries, err := dataset.Generate(g, trips, dcfg)
		if err != nil {
			worldErr = err
			return
		}
		if _, err := model.Train(queries, pathrank.TrainConfig{Epochs: 1, LR: 0.005, ClipNorm: 5, Seed: 1}); err != nil {
			worldErr = err
			return
		}
		worldArt = &pathrank.Artifact{
			Graph: g, Model: model,
			Candidates: dataset.Config{Strategy: dataset.TkDI, K: 3},
			Lineage:    pathrank.Lineage{TrainedOn: len(queries), TotalObserved: len(queries), Note: "offline"},
		}
		worldTrip = trips
	})
	if worldErr != nil {
		t.Fatalf("build test world: %v", worldErr)
	}
	return worldArt, worldTrip
}

// sampleTrajectories converts trips into noisy GPS streams.
func sampleTrajectories(art *pathrank.Artifact, trips []traj.Trip, seed int64) [][]traj.GPSRecord {
	out := make([][]traj.GPSRecord, 0, len(trips))
	for i, tr := range trips {
		cfg := traj.DefaultGPSConfig()
		cfg.Seed = seed + int64(i)
		out = append(out, traj.SampleGPS(art.Graph, tr.Path, cfg))
	}
	return out
}

func TestIngestBackpressure(t *testing.T) {
	art, trips := testWorld(t)
	// No workers running: the queue fills and sheds.
	svc, err := New(art, Config{QueueSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleTrajectories(art, trips[:1], 100)[0]
	if err := svc.IngestGPS(nil); err == nil {
		t.Fatal("empty trajectory accepted")
	}
	if err := svc.IngestGPS(recs); err != nil {
		t.Fatalf("first ingest: %v", err)
	}
	if err := svc.IngestGPS(recs); err != nil {
		t.Fatalf("second ingest: %v", err)
	}
	if err := svc.IngestGPS(recs); err != ErrBacklog {
		t.Fatalf("overflow ingest error = %v, want ErrBacklog", err)
	}
	st := svc.Stats()
	if st.QueueDepth != 2 || st.Received != 2 || st.Dropped != 1 {
		t.Fatalf("stats after overflow: %+v", st)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMatchWindowAndEviction(t *testing.T) {
	art, trips := testWorld(t)
	svc, err := New(art, Config{QueueSize: 16, Workers: 2, Window: 2, MinObservations: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = svc.Run(ctx) }()

	for _, recs := range sampleTrajectories(art, trips[:3], 200) {
		if err := svc.IngestGPS(recs); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 30*time.Second, func() bool {
		st := svc.Stats()
		return st.Matched+st.MatchFailed == 3
	}, "3 trajectories processed")
	st := svc.Stats()
	if st.Matched < 2 {
		t.Fatalf("matched %d of 3 synthetic trajectories, want >= 2", st.Matched)
	}
	if st.WindowSize > 2 {
		t.Fatalf("window size %d exceeds configured bound 2", st.WindowSize)
	}
	cancel()
	<-done
}

// TestRetrainDeterministicLineage proves an incremental retrain is a pure
// function of (artifact, ingest sequence, config): two services fed the
// same trajectories produce bit-identical generation-1 models, and the
// lineage chain records the parent fingerprint.
func TestRetrainDeterministicLineage(t *testing.T) {
	art, trips := testWorld(t)
	parentFP, err := art.Model.FingerprintHex()
	if err != nil {
		t.Fatal(err)
	}

	runOne := func() *pathrank.Artifact {
		svc, err := New(art, Config{QueueSize: 16, Workers: 3, Train: pathrank.TrainConfig{Epochs: 1, LR: 0.002, Seed: 9}})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		done := make(chan struct{})
		go func() { defer close(done); _ = svc.Run(ctx) }()
		streams := sampleTrajectories(art, trips[:4], 300)
		for _, recs := range streams {
			if err := svc.IngestGPS(recs); err != nil {
				t.Fatal(err)
			}
		}
		waitFor(t, 30*time.Second, func() bool {
			st := svc.Stats()
			return st.Matched+st.MatchFailed == int64(len(streams)) && st.Matched > 0
		}, "trajectories processed")
		next, err := svc.RetrainNow()
		if err != nil {
			t.Fatal(err)
		}
		cancel()
		<-done
		return next
	}

	a := runOne()
	b := runOne()
	fpA, err := a.Model.FingerprintHex()
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := b.Model.FingerprintHex()
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpB {
		t.Fatalf("incremental retrain not deterministic: %s != %s", fpA, fpB)
	}
	if fpA == parentFP {
		t.Fatal("retrain produced bit-identical weights; fine-tune had no effect")
	}
	if a.Lineage.Generation != 1 {
		t.Fatalf("generation = %d, want 1", a.Lineage.Generation)
	}
	if a.Lineage.Parent != parentFP {
		t.Fatalf("lineage parent = %.12s, want %.12s", a.Lineage.Parent, parentFP)
	}
	if a.Lineage.TrainedOn == 0 || a.Lineage.TotalObserved <= art.Lineage.TotalObserved {
		t.Fatalf("lineage counters not advanced: %+v", a.Lineage)
	}
	// The base artifact must be untouched: it may still be serving.
	baseFP, err := art.Model.FingerprintHex()
	if err != nil {
		t.Fatal(err)
	}
	if baseFP != parentFP {
		t.Fatal("retrain mutated the serving model")
	}
	// Retraining with an empty window fails cleanly.
	empty, err := New(art, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.RetrainNow(); err == nil {
		t.Fatal("RetrainNow with no observations should error")
	}
}
