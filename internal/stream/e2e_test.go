package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/serve"
)

// TestLiveLoopEndToEnd is the acceptance test for the live pipeline. It
// drives the full production loop through the HTTP surface:
//
//  1. start a ranking server on artifact A,
//  2. ingest synthetic GPS trajectories through POST /v1/ingest,
//  3. trigger an incremental retrain (fine-tune on the matched window),
//  4. hot-swap the resulting artifact B into the live server,
//  5. verify POST /v1/rank now serves B's rankings bit-identically,
//
// while a background load generator hammers /v1/rank across the swap and
// proves zero requests were dropped or errored.
func TestLiveLoopEndToEnd(t *testing.T) {
	artA, trips := testWorld(t)
	fpA, err := artA.Model.FingerprintHex()
	if err != nil {
		t.Fatal(err)
	}
	artifactPath := filepath.Join(t.TempDir(), "model.prart")

	// The server and pipeline wire to each other exactly as pathrank-serve
	// does: the service is the server's Ingestor, the server's Swap is the
	// service's Publish hook.
	var srv *serve.Server
	svc, err := New(artA, Config{
		QueueSize:       64,
		Workers:         2,
		MinObservations: 1,
		Train:           pathrank.TrainConfig{Epochs: 1, LR: 0.002, Seed: 17},
		ArtifactPath:    artifactPath,
		Publish: func(a *pathrank.Artifact) error {
			_, err := srv.Swap(a)
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err = serve.New(artA, serve.Config{Ingest: svc, ArtifactPath: artifactPath})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svcDone := make(chan struct{})
	go func() { defer close(svcDone); _ = svc.Run(ctx) }()

	if got := srv.Fingerprint(); got != fpA {
		t.Fatalf("server starts on %.12s, want artifact A %.12s", got, fpA)
	}

	// Step 2: ingest trajectories over HTTP.
	streams := sampleTrajectories(artA, trips[:4], 400)
	for _, recs := range streams {
		var req serve.IngestRequest
		for _, r := range recs {
			req.Records = append(req.Records, serve.GPSSample{Lon: r.Point.Lon, Lat: r.Point.Lat, T: r.TimeOffset})
		}
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	waitFor(t, 30*time.Second, func() bool {
		st := svc.Stats()
		return st.Matched+st.MatchFailed == int64(len(streams)) && st.Matched > 0
	}, "ingested trajectories map-matched")

	// Background load across the swap: every response must be a complete
	// 200 — a hot swap must never drop or error an in-flight request.
	n := artA.Graph.NumVertices()
	pairs := [][2]int64{{0, int64(n - 1)}, {3, int64(n / 2)}, {int64(n - 2), 1}}
	var loadWG sync.WaitGroup
	var loadErrs atomic.Int64
	var loadReqs atomic.Int64
	stopLoad := make(chan struct{})
	for w := 0; w < 4; w++ {
		loadWG.Add(1)
		go func(w int) {
			defer loadWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				p := pairs[(w+i)%len(pairs)]
				body, _ := json.Marshal(serve.RankRequest{Src: p[0], Dst: p[1]})
				resp, err := http.Post(ts.URL+"/v1/rank", "application/json", bytes.NewReader(body))
				if err != nil {
					loadErrs.Add(1)
					return
				}
				var rr serve.RankResponse
				decErr := json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil || len(rr.Paths) == 0 {
					loadErrs.Add(1)
					return
				}
				loadReqs.Add(1)
			}
		}(w)
	}
	// Let the load generator establish in-flight traffic before swapping.
	waitFor(t, 10*time.Second, func() bool { return loadReqs.Load() >= 8 }, "load generator warm")

	// Steps 3+4: incremental retrain → publish → hot swap.
	artB, err := svc.RetrainNow()
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := artB.Model.FingerprintHex()
	if err != nil {
		t.Fatal(err)
	}
	if fpB == fpA {
		t.Fatal("retrain produced an identical model; the swap would be vacuous")
	}
	if got := srv.Fingerprint(); got != fpB {
		t.Fatalf("server fingerprint %.12s after publish, want B %.12s", got, fpB)
	}

	// Keep load flowing a moment across the post-swap window, then stop.
	time.Sleep(50 * time.Millisecond)
	close(stopLoad)
	loadWG.Wait()
	if e := loadErrs.Load(); e != 0 {
		t.Fatalf("%d rank requests dropped or errored during the live swap (of %d)", e, loadReqs.Load())
	}
	if loadReqs.Load() == 0 {
		t.Fatal("load generator made no successful requests")
	}

	// Step 5: the server now answers with B's rankings, bit-identically.
	rankerB := artB.NewRanker()
	for _, p := range pairs {
		want, err := rankerB.Query(roadnet.VertexID(p[0]), roadnet.VertexID(p[1]))
		if err != nil {
			t.Fatalf("in-process B query %d->%d: %v", p[0], p[1], err)
		}
		body, _ := json.Marshal(serve.RankRequest{Src: p[0], Dst: p[1]})
		resp, err := http.Post(ts.URL+"/v1/rank", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var rr serve.RankResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(rr.Paths) != len(want) {
			t.Fatalf("query %d->%d: %d paths, want %d", p[0], p[1], len(rr.Paths), len(want))
		}
		for i := range want {
			if rr.Paths[i].Score != want[i].Score {
				t.Fatalf("query %d->%d rank %d: served %v, artifact B computes %v",
					p[0], p[1], i+1, rr.Paths[i].Score, want[i].Score)
			}
		}
	}

	// The retrain also persisted B atomically; a cold server starting from
	// the artifact path picks up the new generation with full lineage.
	reloaded, err := pathrank.LoadArtifactFile(artifactPath)
	if err != nil {
		t.Fatal(err)
	}
	fpR, err := reloaded.Model.FingerprintHex()
	if err != nil {
		t.Fatal(err)
	}
	if fpR != fpB {
		t.Fatal("persisted artifact is not generation B")
	}
	if reloaded.Lineage.Generation != 1 || reloaded.Lineage.Parent != fpA {
		t.Fatalf("persisted lineage %+v, want gen 1 with parent %.12s", reloaded.Lineage, fpA)
	}

	// /healthz reflects the swap.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["fingerprint"] != fpB {
		t.Fatalf("healthz fingerprint = %v, want %s", health["fingerprint"], fpB)
	}
	if int(health["generation"].(float64)) != 1 {
		t.Fatalf("healthz generation = %v, want 1", health["generation"])
	}

	cancel()
	select {
	case <-svcDone:
	case <-time.After(5 * time.Second):
		t.Fatal("stream service did not stop")
	}
}
