package stream

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"pathrank/internal/api"
	"pathrank/internal/fault"
)

// degradedTestService builds a WAL-backed service with workers running
// and retraining disabled (MinObservations out of reach), returning the
// service and a cancel that waits for Run to stop.
func degradedTestService(t *testing.T, cfg Config) (*Service, func()) {
	t.Helper()
	art, _ := testWorld(t)
	if cfg.WALDir == "" {
		cfg.WALDir = t.TempDir()
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 32
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.MinObservations == 0 {
		cfg.MinObservations = 1 << 20
	}
	svc, err := New(art, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = svc.Run(ctx)
	}()
	stop := func() {
		cancel()
		<-done
		if err := svc.Close(); err != nil {
			t.Errorf("close service: %v", err)
		}
	}
	return svc, stop
}

// TestDegradedModeParksAndRecovers is the degraded-mode acceptance path:
// WAL appends fail → the pipeline reports degraded and parks matched
// observations instead of dropping them → the disk recovers → the
// backlog re-syncs into the log and window, and the service reports
// ready. Finally a fresh service over the same WAL directory proves the
// log ⊇ window invariant: every observation the window holds is
// replayable from disk.
func TestDegradedModeParksAndRecovers(t *testing.T) {
	walDir := t.TempDir()
	svc, stop := degradedTestService(t, Config{WALDir: walDir})
	art, trips := testWorld(t)
	recs := sampleTrajectories(art, trips, 500)

	// Healthy baseline: three observations straight into log + window.
	for _, r := range recs[:3] {
		if err := svc.IngestGPS(r); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return svc.Stats().Matched == 3 }, "baseline matches")
	if h := svc.Health(); h.State != api.PipelineReady {
		t.Fatalf("healthy pipeline reports %q", h.State)
	}

	// Break the disk: every append now fails.
	restore := fault.Enable(fault.NewPlan(1, fault.Rule{Site: fault.SiteWALAppend, Kind: fault.KindError}))
	for _, r := range recs[3:7] {
		if err := svc.IngestGPS(r); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return svc.Stats().Parked == 4 }, "observations parked")
	st := svc.Stats()
	if !st.Degraded {
		t.Fatalf("stats not degraded with a failing WAL: %+v", st)
	}
	if st.Matched != 3 {
		t.Fatalf("parked observations leaked into matched: %+v", st)
	}
	if st.WALErrors == 0 {
		t.Fatal("no WAL append errors recorded")
	}
	h := svc.Health()
	if h.State != api.PipelineDegraded || h.Parked != 4 || h.Reason == "" {
		t.Fatalf("degraded health = %+v", h)
	}
	if !strings.Contains(h.Reason, "append") {
		t.Fatalf("degraded reason %q does not name the append failure", h.Reason)
	}

	// Window must not contain the parked observations.
	svc.mu.Lock()
	winLen := len(svc.window)
	svc.mu.Unlock()
	if winLen != 3 {
		t.Fatalf("window holds %d observations, want 3 (parked must stay out)", winLen)
	}

	// Heal the disk: the recovery loop drains the backlog and clears the
	// state only after a successful fsync.
	restore()
	waitFor(t, 20*time.Second, func() bool {
		s := svc.Stats()
		return !s.Degraded && s.Parked == 0 && s.Matched == 7
	}, "recovery to ready")
	if h := svc.Health(); h.State != api.PipelineReady || h.Lost != 0 {
		t.Fatalf("post-recovery health = %+v", h)
	}
	stop()

	// WAL ⊇ window: a fresh service over the same directory replays every
	// observation, including the ones that rode out the outage parked.
	svc2, err := New(art, Config{WALDir: walDir, MinObservations: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if svc2.Stats().Recovered != 7 {
		t.Fatalf("recovered %d observations from the WAL, want 7", svc2.Stats().Recovered)
	}
	seen := map[int64]bool{}
	svc2.mu.Lock()
	for _, o := range svc2.windowSnapshotLocked() {
		seen[o.seq] = true
	}
	svc2.mu.Unlock()
	for seq := int64(1); seq <= 7; seq++ {
		if !seen[seq] {
			t.Fatalf("observation seq %d missing from the replayed window (have %v)", seq, seen)
		}
	}
}

// TestDegradedBufferOverflowBoundsLoss: when the outage outlasts the
// parking buffer, the oldest parked observations are dropped and counted
// — losses are bounded and visible, never silent.
func TestDegradedBufferOverflowBoundsLoss(t *testing.T) {
	svc, stop := degradedTestService(t, Config{DegradedBuffer: 2})
	defer stop()
	art, trips := testWorld(t)
	recs := sampleTrajectories(art, trips, 900)

	restore := fault.Enable(fault.NewPlan(1, fault.Rule{Site: fault.SiteWALAppend, Kind: fault.KindError}))
	defer restore()
	for _, r := range recs[:5] {
		if err := svc.IngestGPS(r); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool {
		s := svc.Stats()
		return s.Parked == 2 && s.Lost == 3
	}, "bounded parking buffer")
	if h := svc.Health(); h.Lost != 3 || h.Parked != 2 {
		t.Fatalf("overflow health = %+v", h)
	}
}

// TestMatchWorkerPanicContained: an injected panic in the match path is
// recovered and counted, and the SAME worker pool keeps matching
// subsequent trajectories — one poisoned input cannot stop ingest.
func TestMatchWorkerPanicContained(t *testing.T) {
	svc, stop := degradedTestService(t, Config{Workers: 1})
	defer stop()
	art, trips := testWorld(t)
	recs := sampleTrajectories(art, trips, 1300)

	restore := fault.Enable(fault.NewPlan(1, fault.Rule{Site: fault.SiteMatch, Kind: fault.KindPanic, Times: 2}))
	defer restore()
	for _, r := range recs[:5] {
		if err := svc.IngestGPS(r); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool {
		s := svc.Stats()
		return s.WorkerPanics == 2 && s.Matched == 3
	}, "two contained panics, three matches")
	if h := svc.Health(); h.State != api.PipelineReady || h.WorkerPanics != 2 {
		t.Fatalf("health after contained panics = %+v", h)
	}
}

// TestRetrainPanicContained: a panic inside the fine-tune step fails
// that retrain cleanly (previous generation stays current) and the next
// retrain succeeds.
func TestRetrainPanicContained(t *testing.T) {
	svc, stop := degradedTestService(t, Config{})
	defer stop()
	art, trips := testWorld(t)
	recs := sampleTrajectories(art, trips, 1700)
	for _, r := range recs[:3] {
		if err := svc.IngestGPS(r); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return svc.Stats().Matched == 3 }, "matches before retrain")
	gen := svc.Artifact().Lineage.Generation

	restore := fault.Enable(fault.NewPlan(1, fault.Rule{Site: fault.SiteRetrain, Kind: fault.KindPanic, Times: 1}))
	defer restore()
	if _, err := svc.RetrainNow(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("RetrainNow under an injected panic = %v, want a contained panic error", err)
	}
	if got := svc.Artifact().Lineage.Generation; got != gen {
		t.Fatalf("failed retrain advanced the generation: %d -> %d", gen, got)
	}
	if svc.Stats().WorkerPanics != 1 {
		t.Fatalf("worker panics = %d, want 1", svc.Stats().WorkerPanics)
	}

	// The rule is exhausted (times=1): the next retrain goes through.
	next, err := svc.RetrainNow()
	if err != nil {
		t.Fatalf("retrain after the contained panic: %v", err)
	}
	if next.Lineage.Generation != gen+1 {
		t.Fatalf("post-panic retrain generation %d, want %d", next.Lineage.Generation, gen+1)
	}
}

// TestRetrainSyncFaultMarksDegraded: a failing retrain-boundary fsync
// (not an append) must also flip the degraded state, and the recovery
// loop must clear it once fsync succeeds again — the drain-zero path.
func TestRetrainSyncFaultMarksDegraded(t *testing.T) {
	svc, stop := degradedTestService(t, Config{})
	defer stop()
	art, trips := testWorld(t)
	recs := sampleTrajectories(art, trips, 2100)
	for _, r := range recs[:3] {
		if err := svc.IngestGPS(r); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return svc.Stats().Matched == 3 }, "matches before retrain")

	restore := fault.Enable(fault.NewPlan(1, fault.Rule{Site: fault.SiteWALSync, Kind: fault.KindError}))
	if _, err := svc.RetrainNow(); !errors.Is(err, fault.ErrInjected) {
		restore()
		t.Fatalf("RetrainNow under a failing fsync = %v, want ErrInjected", err)
	}
	if h := svc.Health(); h.State != api.PipelineDegraded {
		restore()
		t.Fatalf("health after a failed retrain fsync = %+v, want degraded", h)
	}
	restore()
	waitFor(t, 20*time.Second, func() bool { return svc.Health().State == api.PipelineReady }, "fsync recovery")
}
