package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"

	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// snapshot is one immutable serving state: an artifact, its ranker, and the
// caching/batching machinery bound to that artifact's model. The server
// holds the current snapshot in an atomic pointer; a hot swap installs a
// new snapshot while requests already running against the old one finish
// undisturbed.
//
// Lifecycle: a snapshot is born with one creation reference. Every request
// acquires a reference for its duration. When the snapshot is replaced, the
// swapper drops the creation reference; once the last in-flight request
// releases its reference the snapshot is drained and its batcher (the only
// component with a background goroutine) is stopped.
type snapshot struct {
	art    *pathrank.Artifact
	ranker *pathrank.Ranker
	engine spath.Engine
	cache  *lruCache
	flight *flightGroup
	batch  *batcher
	// scoreFn is the snapshot's NN scoring path: Model.ScoreBatch (which
	// dispatches to the fused batched kernels) or Model.ScoreBatchPerPath
	// when Config.DisableFusedScoring pins the reference implementation.
	scoreFn func([]spath.Path) []float64
	fp      [sha256.Size]byte
	fpHex   string
	graph   [sha256.Size]byte // digest of the serialized road network
	loaded  time.Time

	refs    atomic.Int64
	drained chan struct{}
}

// graphDigest hashes the graph's serialized form. Gob encoding is
// deterministic for a given structure, so two graphs digest equal iff
// their vertex/edge data is identical — which is what cache reuse across
// a swap requires (cached paths carry edge IDs resolved against the
// serving graph).
func graphDigest(g *roadnet.Graph) ([sha256.Size]byte, error) {
	h := sha256.New()
	if err := g.Save(h); err != nil {
		return [sha256.Size]byte{}, err
	}
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum, nil
}

// newSnapshot builds the serving state for art. When prev is non-nil, the
// new snapshot reuses prev's result cache iff the model fingerprint,
// candidate configuration, AND road network are identical — in that case
// every cached ranking is bit-identical to what the new artifact would
// compute, so dropping the cache would only cost recomputation. Any
// difference fully invalidates the cache (a fresh, empty LRU); in
// particular a changed graph must invalidate even under identical weights,
// because cached paths carry edge IDs and geometry of the old network.
func newSnapshot(art *pathrank.Artifact, cfg Config, prev *snapshot) (*snapshot, error) {
	if art == nil || art.Graph == nil || art.Model == nil {
		return nil, fmt.Errorf("serve: artifact needs a graph and a model")
	}
	fp, err := art.Model.Fingerprint()
	if err != nil {
		return nil, fmt.Errorf("serve: fingerprint artifact: %w", err)
	}
	gd, err := graphDigest(art.Graph)
	if err != nil {
		return nil, fmt.Errorf("serve: digest artifact graph: %w", err)
	}
	p := &snapshot{
		art:    art,
		ranker: art.NewRanker(),
		flight: newFlightGroup(),
		fp:     fp,
		fpHex:  hex.EncodeToString(fp[:]),
		graph:  gd,
		loaded: time.Now(),
	}
	p.engine = buildEngine(art, cfg, gd, prev)
	p.ranker.Engine = p.engine
	if prev != nil && prev.fp == fp && prev.graph == gd &&
		prev.art.Candidates == art.Candidates && prev.cache != nil {
		p.cache = prev.cache
	} else {
		p.cache = newLRUCache(cfg.CacheSize)
	}
	p.scoreFn = art.Model.ScoreBatch
	if cfg.DisableFusedScoring {
		p.scoreFn = art.Model.ScoreBatchPerPath
	}
	if cfg.BatchWindow > 0 {
		p.batch = newBatcher(p.scoreFn, cfg.BatchWindow, cfg.BatchMaxPaths)
	}
	p.refs.Store(1)
	p.drained = make(chan struct{})
	return p, nil
}

// buildEngine resolves the snapshot's shortest-path engine with, in order
// of preference: the structure persisted in the artifact (zero cold-start
// preprocessing), the previous snapshot's engine when the road network is
// digest-identical (an incremental retrain swaps in new weights on the same
// network — rebuilding the hierarchy would waste the swap), and finally an
// on-demand build for artifacts that predate the prep section.
func buildEngine(art *pathrank.Artifact, cfg Config, gd [sha256.Size]byte, prev *snapshot) spath.Engine {
	kind := cfg.engineKind()
	if e := art.Prep.Engine(kind, art.Graph); e != nil {
		return e
	}
	if prev != nil && prev.graph == gd && prev.engine != nil && prev.engine.Kind() == kind {
		// Digest-equal graphs are structurally identical, so the previous
		// engine's distances and edge IDs stay valid for the new artifact.
		return prev.engine
	}
	return spath.NewEngine(kind, art.Graph, spath.ByLength, spath.EngineConfig{})
}

// release drops one reference; the last release marks the snapshot drained.
func (p *snapshot) release() {
	if p.refs.Add(-1) == 0 {
		close(p.drained)
	}
}

// retire drops the creation reference and, once every in-flight request has
// released the snapshot, stops its batcher. It returns immediately; the
// wait runs in the background. Requests that raced the swap and still hold
// the old snapshot keep working: the batcher stays live until they release,
// and even a post-stop straggler falls back to direct scoring.
func (p *snapshot) retire() {
	go func() {
		p.release()
		<-p.drained
		if p.batch != nil {
			p.batch.stop()
		}
	}()
}
