package serve

import (
	"sync"
	"time"

	"pathrank/internal/spath"
)

// batcher coalesces NN scoring work from concurrent requests into larger
// batches. A k=5 candidate set amortizes the fused scorer's batch setup (and
// the per-path pool spin-up) poorly; gathering the candidate sets of
// requests that arrive within a short window scores them in one sweep, which
// also feeds the batched GEMM kernels wider matrices. Scores are per-path
// deterministic, so batched and unbatched serving return bit-identical
// rankings.
type batcher struct {
	scoreFn  func([]spath.Path) []float64
	window   time.Duration
	maxPaths int

	reqs    chan *scoreReq
	quit    chan struct{}
	done    chan struct{}
	flushes sync.WaitGroup

	// onFlush, when non-nil, observes (batched requests, total paths) per
	// flush; the server wires it to the metrics counters.
	onFlush func(reqs, paths int)
}

type scoreReq struct {
	paths  []spath.Path
	scores []float64
	done   chan struct{}
}

// newBatcher starts a batcher that scores coalesced sweeps with scoreFn
// (the snapshot's configured scoring path).
func newBatcher(scoreFn func([]spath.Path) []float64, window time.Duration, maxPaths int) *batcher {
	if maxPaths <= 0 {
		maxPaths = 256
	}
	b := &batcher{
		scoreFn:  scoreFn,
		window:   window,
		maxPaths: maxPaths,
		reqs:     make(chan *scoreReq),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.loop()
	return b
}

// score blocks until the batcher has scored paths, falling back to direct
// scoring when the batcher is stopped.
func (b *batcher) score(paths []spath.Path) []float64 {
	if len(paths) == 0 {
		return nil
	}
	req := &scoreReq{paths: paths, done: make(chan struct{})}
	select {
	case b.reqs <- req:
		<-req.done
		return req.scores
	case <-b.quit:
		return b.scoreFn(paths)
	}
}

// stop drains the dispatcher and waits for in-flight scoring sweeps;
// pending requests are still answered.
func (b *batcher) stop() {
	close(b.quit)
	<-b.done
	b.flushes.Wait()
}

func (b *batcher) loop() {
	defer close(b.done)
	for {
		select {
		case first := <-b.reqs:
			batch := []*scoreReq{first}
			total := len(first.paths)
			timer := time.NewTimer(b.window)
		gather:
			for total < b.maxPaths {
				select {
				case r := <-b.reqs:
					batch = append(batch, r)
					total += len(r.paths)
				case <-timer.C:
					break gather
				case <-b.quit:
					break gather
				}
			}
			timer.Stop()
			// Score in a separate goroutine so the next batch can gather
			// while this one runs: flush touches only its own requests and
			// the read-only model, so sweeps are safe concurrently, and a
			// synchronous flush here would serialize all scoring behind
			// the dispatcher.
			b.flushes.Add(1)
			go func() {
				defer b.flushes.Done()
				b.flush(batch, total)
			}()
		case <-b.quit:
			return
		}
	}
}

// flush scores the union of the batch in one parallel sweep and hands each
// request its slice of the results.
func (b *batcher) flush(batch []*scoreReq, total int) {
	all := make([]spath.Path, 0, total)
	for _, r := range batch {
		all = append(all, r.paths...)
	}
	scores := b.scoreFn(all)
	off := 0
	for _, r := range batch {
		r.scores = scores[off : off+len(r.paths) : off+len(r.paths)]
		off += len(r.paths)
		close(r.done)
	}
	if b.onFlush != nil {
		b.onFlush(len(batch), total)
	}
}
