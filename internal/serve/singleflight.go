package serve

import (
	"context"
	"errors"
	"sync"

	"pathrank/internal/pathrank"
)

// flightGroup collapses duplicate in-flight computations: while one
// goroutine computes the result for a key, later callers with the same key
// block and share its result instead of recomputing. This is the standard
// singleflight pattern, specialized to rank queries so the module stays
// dependency-free.
type flightGroup struct {
	mu sync.Mutex
	m  map[queryKey]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when val/err are final
	val  []pathrank.Ranked
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[queryKey]*flightCall)}
}

// do invokes fn once per concurrent set of callers with the same key.
// shared reports whether the caller received (or abandoned waiting for)
// another goroutine's computation. A waiter honors its own context: when
// ctx expires before the leader finishes, the waiter returns ctx's error
// immediately instead of outliving its deadline on someone else's
// computation — the leader keeps running for the callers still waiting.
// A panic in fn is re-raised in the leader after the call is unregistered
// and waiters are released (they observe errFlightPanic), so one panicking
// query cannot poison its key forever.
func (g *flightGroup) do(ctx context.Context, key queryKey, fn func() ([]pathrank.Ranked, error)) (val []pathrank.Ranked, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	c.err = errFlightPanic // overwritten on normal return
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		close(c.done)
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}

// errFlightPanic is what waiters of a panicked computation observe; the
// leader's own goroutine re-raises the panic (net/http recovers it and
// kills only that connection).
var errFlightPanic = errors.New("serve: in-flight computation panicked")
