package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pathrank/internal/api"
	"pathrank/internal/dataset"
	"pathrank/internal/geo"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
)

// postV2 posts a raw v2 body and decodes the response into out when the
// status is 200.
func postV2(t testing.TB, url, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v2/rank", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode v2 response: %v", err)
		}
	}
	return resp
}

// decodeV2Error reads a non-200 v2 response's typed error envelope.
func decodeV2Error(t testing.TB, url, body string) (*http.Response, *api.Error) {
	t.Helper()
	resp, err := http.Post(url+"/v2/rank", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode v2 error envelope: %v", err)
	}
	if env.Error == nil {
		t.Fatal("error response without error body")
	}
	return resp, env.Error
}

// TestV2SingleMatchesV1AndInProcess is the version-compatibility
// acceptance test: one query answered over /v2/rank equals both the
// /v1/rank response and an in-process Ranker.Query, path for path and
// score for score.
func TestV2SingleMatchesV1AndInProcess(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	art := loadedTestArtifact(t)
	src, dst := int64(0), int64(art.Graph.NumVertices()-1)

	var v2 api.RankResult
	resp := postV2(t, ts.URL, fmt.Sprintf(`{"src":%d,"dst":%d}`, src, dst), &v2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v2 status %d", resp.StatusCode)
	}
	_, v1 := postRank(t, ts.URL, RankRequest{Src: src, Dst: dst})

	if len(v2.Paths) == 0 || len(v2.Paths) != len(v1.Paths) {
		t.Fatalf("v2 %d paths vs v1 %d", len(v2.Paths), len(v1.Paths))
	}
	for i := range v2.Paths {
		a, b := v2.Paths[i], v1.Paths[i]
		if a.Score != b.Score || a.LengthM != b.LengthM || len(a.Vertices) != len(b.Vertices) {
			t.Fatalf("path %d differs between v1 and v2", i)
		}
	}

	ranker := art.NewRanker()
	want, err := ranker.Query(roadnet.VertexID(src), roadnet.VertexID(dst))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(v2.Paths) {
		t.Fatalf("in-process %d paths vs v2 %d", len(want), len(v2.Paths))
	}
	for i := range want {
		if want[i].Score != v2.Paths[i].Score {
			t.Fatalf("score %d: in-process %v vs v2 %v", i, want[i].Score, v2.Paths[i].Score)
		}
	}
}

// TestV2CacheSharedAcrossVersions: a v1 query warms the cache for the
// equivalent v2 query and vice versa — the normalized key makes the two
// versions one cache population.
func TestV2CacheSharedAcrossVersions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	art := loadedTestArtifact(t)
	src, dst := int64(1), int64(art.Graph.NumVertices()-2)

	_, v1 := postRank(t, ts.URL, RankRequest{Src: src, Dst: dst})
	if v1.Cached {
		t.Fatal("first v1 query cannot be cached")
	}
	var v2 api.RankResult
	postV2(t, ts.URL, fmt.Sprintf(`{"src":%d,"dst":%d}`, src, dst), &v2)
	if !v2.Cached {
		t.Fatal("v2 query after identical v1 query should hit the shared cache")
	}
	// Naming the snapshot defaults explicitly still hits the same entry.
	k := art.Candidates.K
	var v2b api.RankResult
	postV2(t, ts.URL, fmt.Sprintf(`{"src":%d,"dst":%d,"k":%d,"strategy":"dtkdi","weight":"length"}`, src, dst, k), &v2b)
	if !v2b.Cached {
		t.Fatal("explicit defaults should normalize onto the cached entry")
	}
}

// TestV2Overrides: per-request k and strategy change the result; explain
// returns resolved stats.
func TestV2Overrides(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	art := loadedTestArtifact(t)
	src, dst := int64(0), int64(art.Graph.NumVertices()-1)

	var small api.RankResult
	postV2(t, ts.URL, fmt.Sprintf(`{"src":%d,"dst":%d,"k":2,"explain":true}`, src, dst), &small)
	if len(small.Paths) > 2 {
		t.Fatalf("k=2 returned %d paths", len(small.Paths))
	}
	if small.Stats == nil || small.Stats.K != 2 {
		t.Fatalf("explain stats missing or wrong: %+v", small.Stats)
	}
	if small.Stats.GenNs <= 0 || small.Stats.ScoreNs <= 0 {
		t.Fatalf("explain stats missing timings: %+v", small.Stats)
	}

	var tk api.RankResult
	postV2(t, ts.URL, fmt.Sprintf(`{"src":%d,"dst":%d,"strategy":"tkdi","explain":true}`, src, dst), &tk)
	if tk.Stats == nil || tk.Stats.Strategy != "TkDI" {
		t.Fatalf("strategy override stats: %+v", tk.Stats)
	}

	var tm api.RankResult
	postV2(t, ts.URL, fmt.Sprintf(`{"src":%d,"dst":%d,"weight":"time","explain":true}`, src, dst), &tm)
	if tm.Stats == nil || tm.Stats.Weight != "time" {
		t.Fatalf("weight override stats: %+v", tm.Stats)
	}
}

// TestV2BatchPerItemErrors: a mixed batch returns 200 with per-item typed
// errors, and its successful items equal the corresponding single queries.
func TestV2BatchPerItemErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	art := loadedTestArtifact(t)
	n := art.Graph.NumVertices()
	src, dst := int64(0), int64(n-1)

	body := fmt.Sprintf(`{"queries":[
		{"src":%d,"dst":%d},
		{"src":%d,"dst":1},
		{"src":0,"dst":1,"k":%d},
		{"src":2,"dst":%d,"strategy":"nope"}
	]}`, src, dst, n, s.cfg.MaxK+1, dst)

	var batch api.BatchResponse
	resp := postV2(t, ts.URL, body, &batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, want 200 with per-item errors", resp.StatusCode)
	}
	if len(batch.Results) != 4 || batch.Errors != 3 {
		t.Fatalf("results=%d errors=%d, want 4/3", len(batch.Results), batch.Errors)
	}
	ok := batch.Results[0]
	if ok.Error != nil || ok.Response == nil || len(ok.Response.Paths) == 0 {
		t.Fatalf("item 0 should succeed: %+v", ok)
	}
	for i := 1; i <= 3; i++ {
		it := batch.Results[i]
		if it.Error == nil || it.Response != nil {
			t.Fatalf("item %d should fail: %+v", i, it)
		}
		if it.Error.Code != api.CodeInvalid {
			t.Fatalf("item %d code %q, want invalid", i, it.Error.Code)
		}
		if it.Index != i {
			t.Fatalf("item %d reports index %d", i, it.Index)
		}
	}

	// The batch's successful item matches a single v2 query bit for bit.
	var single api.RankResult
	postV2(t, ts.URL, fmt.Sprintf(`{"src":%d,"dst":%d}`, src, dst), &single)
	if len(single.Paths) != len(ok.Response.Paths) {
		t.Fatalf("batch item vs single: %d vs %d paths", len(ok.Response.Paths), len(single.Paths))
	}
	for i := range single.Paths {
		if single.Paths[i].Score != ok.Response.Paths[i].Score {
			t.Fatalf("batch item score %d differs from single query", i)
		}
	}
}

// TestV2BatchUnroutable: an unroutable pair inside a batch fails only its
// item, with the unroutable code.
func TestV2BatchUnroutable(t *testing.T) {
	s := islandServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var batch api.BatchResponse
	resp := postV2(t, ts.URL, `{"queries":[{"src":0,"dst":1},{"src":0,"dst":2}]}`, &batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if batch.Errors != 1 {
		t.Fatalf("errors=%d, want 1", batch.Errors)
	}
	if batch.Results[0].Error != nil {
		t.Fatalf("routable item failed: %+v", batch.Results[0].Error)
	}
	if e := batch.Results[1].Error; e == nil || e.Code != api.CodeUnroutable {
		t.Fatalf("island item: %+v, want unroutable", e)
	}
}

// islandServer serves a two-island graph (0-1 and 2-3 disconnected).
func islandServer(t testing.TB) *Server {
	t.Helper()
	b := roadnet.NewBuilder(4, 4)
	v0 := b.AddVertex(geo.Point{Lon: 10, Lat: 57})
	v1 := b.AddVertex(geo.Point{Lon: 10.01, Lat: 57})
	v2 := b.AddVertex(geo.Point{Lon: 10.02, Lat: 57})
	v3 := b.AddVertex(geo.Point{Lon: 10.03, Lat: 57})
	b.AddBidirectional(v0, v1, roadnet.Residential)
	b.AddBidirectional(v2, v3, roadnet.Residential)
	g := b.Build()
	model, err := pathrank.New(g.NumVertices(), pathrank.Config{
		EmbeddingDim: 4, Hidden: 4, Variant: pathrank.PRA2, Body: pathrank.GRUBody, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(&pathrank.Artifact{Graph: g, Model: model}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestV2TypedErrorStatuses: single-query failures carry the right status
// and envelope.
func TestV2TypedErrorStatuses(t *testing.T) {
	s := islandServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, e := decodeV2Error(t, ts.URL, `{"src":0,"dst":2}`)
	if resp.StatusCode != http.StatusNotFound || e.Code != api.CodeUnroutable {
		t.Fatalf("unroutable: status=%d code=%q", resp.StatusCode, e.Code)
	}
	resp, e = decodeV2Error(t, ts.URL, `{"src":0,"dst":99}`)
	if resp.StatusCode != http.StatusBadRequest || e.Code != api.CodeInvalid {
		t.Fatalf("out of range: status=%d code=%q", resp.StatusCode, e.Code)
	}
	resp, e = decodeV2Error(t, ts.URL, `{"src":0,`)
	if resp.StatusCode != http.StatusBadRequest || e.Code != api.CodeInvalid {
		t.Fatalf("bad json: status=%d code=%q", resp.StatusCode, e.Code)
	}
	resp, e = decodeV2Error(t, ts.URL, `{"src":0,"dst":1,"engine":"alt"}`)
	if resp.StatusCode != http.StatusBadRequest || e.Code != api.CodeInvalid {
		t.Fatalf("unprepared engine: status=%d code=%q", resp.StatusCode, e.Code)
	}
}

// slowArtifact builds a large network on which a huge-k TkDI query takes
// long enough to observe deadlines and backpressure mid-computation.
var (
	slowArtOnce sync.Once
	slowArt     *pathrank.Artifact
	slowArtErr  error
)

func slowArtifact(t testing.TB) *pathrank.Artifact {
	t.Helper()
	slowArtOnce.Do(func() {
		g, err := roadnet.Generate(roadnet.GenConfig{
			Rows: 40, Cols: 40, SpacingM: 250, JitterFrac: 0.25,
			RemoveFrac: 0.10, ArterialEvery: 5, Motorway: true,
			Origin: geo.Point{Lon: 9.9187, Lat: 57.0488}, Seed: 3,
		})
		if err != nil {
			slowArtErr = err
			return
		}
		model, err := pathrank.New(g.NumVertices(), pathrank.Config{
			EmbeddingDim: 4, Hidden: 4, Variant: pathrank.PRA2, Body: pathrank.GRUBody, Seed: 1,
		})
		if err != nil {
			slowArtErr = err
			return
		}
		slowArt = &pathrank.Artifact{
			Graph: g, Model: model,
			Candidates: dataset.Config{Strategy: dataset.TkDI, K: 4},
		}
	})
	if slowArtErr != nil {
		t.Fatal(slowArtErr)
	}
	return slowArt
}

// slowServer serves the slow artifact on the plain Dijkstra engine with
// the given extra config knobs.
func slowServer(t testing.TB, cfg Config) (*Server, *pathrank.Artifact) {
	t.Helper()
	art := slowArtifact(t)
	cfg.Engine = "dijkstra"
	if cfg.MaxK == 0 {
		cfg.MaxK = 4096
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = -1
	}
	s, err := New(art, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, art
}

// TestV2DeadlineMidYen is the acceptance test for server-side deadlines: a
// slow enumeration under a 20ms timeout_ms returns 504 with the deadline
// code, and the workspaces it abandoned mid-search go back to the pool
// uncorrupted — the same query re-run without a deadline matches an
// in-process ranker exactly.
func TestV2DeadlineMidYen(t *testing.T) {
	s, art := slowServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	src, dst := int64(0), int64(art.Graph.NumVertices()-1)

	// k=3000 runs >1s uncanceled (see the spath cancellation tests); the
	// 20ms deadline must cut it off mid-Yen.
	start := time.Now()
	resp, e := decodeV2Error(t, ts.URL,
		fmt.Sprintf(`{"src":%d,"dst":%d,"k":3000,"timeout_ms":20}`, src, dst))
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout || e.Code != api.CodeDeadline {
		t.Fatalf("deadline query: status=%d code=%q (elapsed %v), want 504/deadline", resp.StatusCode, e.Code, elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to take effect", elapsed)
	}

	// Pool integrity: a modest query right after the aborted enumeration
	// is bit-identical to a fresh in-process ranker.
	var got api.RankResult
	if r2 := postV2(t, ts.URL, fmt.Sprintf(`{"src":%d,"dst":%d}`, src, dst), &got); r2.StatusCode != http.StatusOK {
		t.Fatalf("post-deadline query: status %d", r2.StatusCode)
	}
	ranker := art.NewRanker()
	want, err := ranker.Query(roadnet.VertexID(src), roadnet.VertexID(dst))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got.Paths) {
		t.Fatalf("post-deadline: %d vs %d paths", len(got.Paths), len(want))
	}
	for i := range want {
		if want[i].Score != got.Paths[i].Score {
			t.Fatalf("post-deadline: score %d differs", i)
		}
	}
}

// TestV2EngineWeightContradiction: naming a prepared engine together with
// the time metric is rejected over HTTP exactly as the in-process Rank
// rejects it — even when the named engine is the snapshot's own (the
// normalization must not fold the contradiction away).
func TestV2EngineWeightContradiction(t *testing.T) {
	_, ts := newTestServer(t, Config{}) // default engine: ch
	resp, e := decodeV2Error(t, ts.URL, `{"src":0,"dst":1,"engine":"ch","weight":"time"}`)
	if resp.StatusCode != http.StatusBadRequest || e.Code != api.CodeInvalid {
		t.Fatalf("ch+time: status=%d code=%q, want 400/invalid", resp.StatusCode, e.Code)
	}
}

// TestV2EmptyBatch: {"queries":[]} is an empty batch (answered as such),
// not a src=0,dst=0 single query.
func TestV2EmptyBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var batch api.BatchResponse
	resp := postV2(t, ts.URL, `{"queries":[]}`, &batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty batch: status %d", resp.StatusCode)
	}
	if batch.Results == nil || len(batch.Results) != 0 || batch.Errors != 0 {
		t.Fatalf("empty batch: %+v, want zero results", batch)
	}
}

// TestV2CachedExplainOmitsStats: explain on a cache hit omits stats (the
// responding request generated nothing), per the documented contract.
func TestV2CachedExplainOmitsStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	art := loadedTestArtifact(t)
	body := fmt.Sprintf(`{"src":4,"dst":%d,"explain":true}`, art.Graph.NumVertices()-1)
	var first, second api.RankResult
	postV2(t, ts.URL, body, &first)
	if first.Cached || first.Stats == nil {
		t.Fatalf("first query: cached=%v stats=%v", first.Cached, first.Stats)
	}
	postV2(t, ts.URL, body, &second)
	if !second.Cached || second.Stats != nil {
		t.Fatalf("cached query: cached=%v stats=%+v, want cached with no stats", second.Cached, second.Stats)
	}
}

// TestBuildQueryMaxProbePinning: an explicit max_probe equal to the
// snapshot default must survive normalization when k is overridden —
// a default probe budget scales with k, a pinned one does not.
func TestBuildQueryMaxProbePinning(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	snap := s.snap.Load()
	snap.ranker.Candidates.MaxProbe = 50
	defK := snap.ranker.Candidates.K

	cq, apiErr := s.buildQuery(snap, api.RankQuery{Src: 0, Dst: 1, K: defK * 2, MaxProbe: 50})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	if cq.req.MaxProbe != 50 {
		t.Fatalf("explicit max_probe with k override normalized away: req.MaxProbe=%d", cq.req.MaxProbe)
	}
	// Without the k override the same explicit value IS the default.
	cq, apiErr = s.buildQuery(snap, api.RankQuery{Src: 0, Dst: 1, MaxProbe: 50})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	if cq.req.MaxProbe != 0 {
		t.Fatalf("default-equal max_probe not normalized: req.MaxProbe=%d", cq.req.MaxProbe)
	}
}

// TestV2BacklogSheds: with MaxInFlight set, a request arriving while the
// cap is occupied is shed with 503 + the backlog code + Retry-After on
// both API versions, instead of queuing behind the slow computation.
func TestV2BacklogSheds(t *testing.T) {
	s, art := slowServer(t, Config{MaxInFlight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	n := art.Graph.NumVertices()

	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		resp, err := http.Post(ts.URL+"/v2/rank", "application/json",
			strings.NewReader(fmt.Sprintf(`{"src":0,"dst":%d,"k":3000}`, n-1)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wait until the slow request is counted in flight.
	deadline := time.Now().Add(5 * time.Second)
	for s.inFlightGauge.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	resp, e := decodeV2Error(t, ts.URL, `{"src":0,"dst":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable || e.Code != api.CodeBacklog {
		t.Fatalf("overloaded v2: status=%d code=%q, want 503/backlog", resp.StatusCode, e.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("backlog response missing Retry-After")
	}
	// v1 sheds too, in its own error shape.
	r1, err := http.Post(ts.URL+"/v1/rank", "application/json", strings.NewReader(`{"src":0,"dst":1}`))
	if err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	if r1.StatusCode != http.StatusServiceUnavailable || r1.Header.Get("Retry-After") == "" {
		t.Fatalf("overloaded v1: status=%d retry-after=%q", r1.StatusCode, r1.Header.Get("Retry-After"))
	}
	<-slowDone
}

// TestFlightWaiterHonorsDeadline: a request that joins another's in-flight
// computation still times out on its own deadline instead of waiting the
// leader out.
func TestFlightWaiterHonorsDeadline(t *testing.T) {
	g := newFlightGroup()
	key := queryKey{src: 1, dst: 2}
	leaderStarted := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = g.do(context.Background(), key, func() ([]pathrank.Ranked, error) {
			close(leaderStarted)
			<-release
			return nil, nil
		})
	}()
	<-leaderStarted
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err, shared := g.do(ctx, key, func() ([]pathrank.Ranked, error) {
		t.Error("waiter must not recompute")
		return nil, nil
	})
	if !shared || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter: shared=%v err=%v, want shared deadline error", shared, err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("waiter blocked %v past its deadline", time.Since(start))
	}
	close(release)
}

// TestV2BatchDedupesDuplicates: identical queries inside one batch
// compute once; followers get the same ranking marked shared.
func TestV2BatchDedupesDuplicates(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: -1})
	art := loadedTestArtifact(t)
	dst := art.Graph.NumVertices() - 1

	misses := s.cacheMisses.Value()
	var batch api.BatchResponse
	body := fmt.Sprintf(`{"queries":[{"src":5,"dst":%d},{"src":5,"dst":%d},{"src":5,"dst":%d}]}`, dst, dst, dst)
	resp := postV2(t, ts.URL, body, &batch)
	if resp.StatusCode != http.StatusOK || batch.Errors != 0 {
		t.Fatalf("status=%d errors=%d", resp.StatusCode, batch.Errors)
	}
	if got := s.cacheMisses.Value() - misses; got != 1 {
		t.Fatalf("duplicate batch items caused %d computations, want 1", got)
	}
	lead := batch.Results[0].Response
	for i := 1; i < 3; i++ {
		f := batch.Results[i].Response
		if f == nil || !f.Shared {
			t.Fatalf("item %d: %+v, want shared follower", i, batch.Results[i])
		}
		if len(f.Paths) != len(lead.Paths) || f.Paths[0].Score != lead.Paths[0].Score {
			t.Fatalf("item %d ranking differs from leader", i)
		}
	}
}

// TestV2BatchTooLarge: batches over MaxBatch are rejected whole.
func TestV2BatchTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2})
	resp, e := decodeV2Error(t, ts.URL, `{"queries":[{"src":0,"dst":1},{"src":0,"dst":2},{"src":0,"dst":3}]}`)
	if resp.StatusCode != http.StatusBadRequest || e.Code != api.CodeInvalid {
		t.Fatalf("oversized batch: status=%d code=%q", resp.StatusCode, e.Code)
	}
}

// TestV1ReloadClientErrorIs400: a reload naming a nonexistent artifact is
// the client's fault, not a 500.
func TestV1ReloadClientErrorIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"artifact":"/nonexistent/bundle.prart"}`
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reload with bad client path: status %d, want 400", resp.StatusCode)
	}
}

// TestV2BatchScoringMatchesSingles runs a batch of distinct queries
// (scored in one sweep) and checks every item equals its individually
// served counterpart — the micro-batched scoring must be invisible.
func TestV2BatchScoringMatchesSingles(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: -1})
	art := loadedTestArtifact(t)
	n := art.Graph.NumVertices()

	var qs []string
	pairs := [][2]int64{{0, int64(n - 1)}, {1, int64(n - 2)}, {2, int64(n - 3)}, {3, int64(n - 4)}}
	for _, p := range pairs {
		qs = append(qs, fmt.Sprintf(`{"src":%d,"dst":%d}`, p[0], p[1]))
	}
	var batch api.BatchResponse
	resp := postV2(t, ts.URL, `{"queries":[`+strings.Join(qs, ",")+`]}`, &batch)
	if resp.StatusCode != http.StatusOK || batch.Errors != 0 {
		t.Fatalf("batch: status=%d errors=%d", resp.StatusCode, batch.Errors)
	}
	for i, q := range qs {
		var single api.RankResult
		postV2(t, ts.URL, q, &single)
		item := batch.Results[i].Response
		if item == nil || len(item.Paths) != len(single.Paths) {
			t.Fatalf("item %d: path count differs from single", i)
		}
		for j := range single.Paths {
			if single.Paths[j].Score != item.Paths[j].Score {
				t.Fatalf("item %d path %d: batch score differs from single", i, j)
			}
		}
	}
}
