package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathrank/internal/geo"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
)

// roundTripArtifact pushes an artifact through the persistence layer,
// yielding a distinct object with bit-identical weights (same fingerprint).
func roundTripArtifact(t testing.TB, art *pathrank.Artifact) *pathrank.Artifact {
	t.Helper()
	var buf bytes.Buffer
	if err := pathrank.SaveArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	loaded, err := pathrank.LoadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// variantArtifact builds an artifact over the same graph and candidate
// config whose model has different weights (fresh initialization from a
// different seed), i.e. a different fingerprint.
func variantArtifact(t testing.TB, art *pathrank.Artifact, seed int64) *pathrank.Artifact {
	t.Helper()
	cfg := art.Model.Config()
	cfg.Seed = seed
	model, err := pathrank.New(art.Graph.NumVertices(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &pathrank.Artifact{
		Graph:      art.Graph,
		Model:      model,
		Candidates: art.Candidates,
		Lineage:    art.Lineage.Child("test-parent", 1, "test"),
	}
}

// TestSwapSameFingerprintKeepsCacheBitIdentical is the first half of the
// hot-swap cache property: swapping in an artifact whose model fingerprint
// (and candidate config) is identical must preserve the LRU cache, and the
// cached rankings served afterwards must be bit-identical to those served
// before the swap.
func TestSwapSameFingerprintKeepsCacheBitIdentical(t *testing.T) {
	art := loadedTestArtifact(t)
	s, ts := newTestServer(t, Config{})
	n := int64(art.Graph.NumVertices())

	req := RankRequest{Src: 2, Dst: n - 3}
	_, before := postRank(t, ts.URL, req)
	if before.Cached {
		t.Fatal("first response should be a miss")
	}
	cacheLen := s.snap.Load().cache.len()
	if cacheLen == 0 {
		t.Fatal("expected a cached entry before the swap")
	}

	info, err := s.Swap(roundTripArtifact(t, art))
	if err != nil {
		t.Fatal(err)
	}
	if info.Changed {
		t.Fatal("round-tripped artifact reported a changed fingerprint")
	}
	if !info.CachePreserved {
		t.Fatal("identical fingerprint must preserve the cache")
	}
	if got := s.snap.Load().cache.len(); got != cacheLen {
		t.Fatalf("cache length changed across same-fingerprint swap: %d -> %d", cacheLen, got)
	}

	_, after := postRank(t, ts.URL, req)
	if !after.Cached {
		t.Fatal("post-swap request should hit the preserved cache")
	}
	if len(after.Paths) != len(before.Paths) {
		t.Fatal("path count changed across same-fingerprint swap")
	}
	for i := range before.Paths {
		if after.Paths[i].Score != before.Paths[i].Score {
			t.Fatalf("rank %d score changed across same-fingerprint swap: %v != %v",
				i+1, after.Paths[i].Score, before.Paths[i].Score)
		}
		if len(after.Paths[i].Vertices) != len(before.Paths[i].Vertices) {
			t.Fatalf("rank %d path changed across same-fingerprint swap", i+1)
		}
		for j := range before.Paths[i].Vertices {
			if after.Paths[i].Vertices[j] != before.Paths[i].Vertices[j] {
				t.Fatalf("rank %d vertex %d changed across same-fingerprint swap", i+1, j)
			}
		}
	}
}

// TestSwapDifferentFingerprintInvalidatesCache is the second half of the
// property: a different model fingerprint must fully invalidate the cache,
// and post-swap responses must be bit-identical to the NEW model's
// in-process rankings.
func TestSwapDifferentFingerprintInvalidatesCache(t *testing.T) {
	art := loadedTestArtifact(t)
	s, ts := newTestServer(t, Config{})
	n := int64(art.Graph.NumVertices())

	for _, req := range []RankRequest{{Src: 0, Dst: n - 1}, {Src: 4, Dst: n / 2}} {
		postRank(t, ts.URL, req)
	}
	if s.snap.Load().cache.len() == 0 {
		t.Fatal("expected cached entries before the swap")
	}

	art2 := variantArtifact(t, art, 999)
	info, err := s.Swap(art2)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Changed {
		t.Fatal("variant artifact should report a changed fingerprint")
	}
	if info.CachePreserved {
		t.Fatal("different fingerprint must not preserve the cache")
	}
	if got := s.snap.Load().cache.len(); got != 0 {
		t.Fatalf("cache not fully invalidated: %d entries survive", got)
	}
	if info.Generation != art2.Lineage.Generation {
		t.Fatalf("swap info generation %d, want %d", info.Generation, art2.Lineage.Generation)
	}

	// Responses now come from the new model, bit-identically.
	ranker := art2.NewRanker()
	req := RankRequest{Src: 0, Dst: n - 1}
	want, err := ranker.Query(roadnet.VertexID(req.Src), roadnet.VertexID(req.Dst))
	if err != nil {
		t.Fatal(err)
	}
	resp, rr := postRank(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap rank status %d", resp.StatusCode)
	}
	if rr.Cached {
		t.Fatal("post-swap response served from a cache that should be empty")
	}
	if len(rr.Paths) != len(want) {
		t.Fatalf("post-swap paths %d, want %d", len(rr.Paths), len(want))
	}
	for i := range want {
		if rr.Paths[i].Score != want[i].Score {
			t.Fatalf("post-swap rank %d score %v, want new model's %v", i+1, rr.Paths[i].Score, want[i].Score)
		}
	}
}

// TestConcurrentReloadDuringRank hammers /v1/rank while the artifact is
// hot-swapped back and forth, asserting zero dropped or errored requests
// and that every response is bit-identical to one of the two models'
// rankings (never a mixture). Run under -race this also proves the swap
// path is data-race free.
func TestConcurrentReloadDuringRank(t *testing.T) {
	art := loadedTestArtifact(t)
	s, ts := newTestServer(t, Config{BatchWindow: time.Millisecond, CacheSize: 8})
	n := art.Graph.NumVertices()
	artB := variantArtifact(t, art, 4242)

	type pair struct{ src, dst int64 }
	pairs := make([]pair, 6)
	expected := make([]map[string][]float64, len(pairs)) // fingerprint -> scores
	fpA, fpB := s.Fingerprint(), mustFingerprint(t, artB)
	for i := range pairs {
		src := int64((i * 11) % n)
		dst := int64(n - 1 - (i*7)%n)
		if src == dst {
			dst = (dst + 1) % int64(n)
		}
		pairs[i] = pair{src, dst}
		expected[i] = make(map[string][]float64)
		for _, m := range []*pathrank.Artifact{art, artB} {
			ranked, err := m.NewRanker().Query(roadnet.VertexID(src), roadnet.VertexID(dst))
			if err != nil {
				t.Fatalf("precompute %d->%d: %v", src, dst, err)
			}
			scores := make([]float64, len(ranked))
			for j, rk := range ranked {
				scores[j] = rk.Score
			}
			fp := fpA
			if m == artB {
				fp = fpB
			}
			expected[i][fp] = scores
		}
	}

	stop := make(chan struct{})
	var swapErr atomic.Value
	var swapperDone sync.WaitGroup
	swapperDone.Add(1)
	go func() {
		defer swapperDone.Done()
		arts := []*pathrank.Artifact{artB, art}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Swap(arts[i%2]); err != nil {
				swapErr.Store(err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const workers = 8
	const perWorker = 40
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < perWorker; r++ {
				i := (w + r) % len(pairs)
				resp, rr := postRank(t, ts.URL, RankRequest{Src: pairs[i].src, Dst: pairs[i].dst})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("rank %d->%d during swap: status %d", pairs[i].src, pairs[i].dst, resp.StatusCode)
					return
				}
				got := make([]float64, len(rr.Paths))
				for j, p := range rr.Paths {
					got[j] = p.Score
				}
				if !matchesOneModel(got, expected[i]) {
					errs <- fmt.Errorf("rank %d->%d: scores %v match neither model", pairs[i].src, pairs[i].dst, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	swapperDone.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err, _ := swapErr.Load().(error); err != nil {
		t.Fatalf("swapper failed: %v", err)
	}
}

func mustFingerprint(t testing.TB, art *pathrank.Artifact) string {
	t.Helper()
	fp, err := art.Model.FingerprintHex()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func matchesOneModel(got []float64, want map[string][]float64) bool {
	for _, scores := range want {
		if len(scores) != len(got) {
			continue
		}
		same := true
		for i := range scores {
			if scores[i] != got[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// TestSwapDifferentGraphInvalidatesCache: identical model weights over a
// DIFFERENT road network must invalidate the cache — cached paths carry
// edge IDs and geometry of the old graph.
func TestSwapDifferentGraphInvalidatesCache(t *testing.T) {
	buildGraph := func(cat roadnet.Category) *roadnet.Graph {
		b := roadnet.NewBuilder(3, 4)
		v0 := b.AddVertex(geo.Point{Lon: 10.00, Lat: 57.00})
		v1 := b.AddVertex(geo.Point{Lon: 10.01, Lat: 57.00})
		v2 := b.AddVertex(geo.Point{Lon: 10.01, Lat: 57.01})
		b.AddBidirectional(v0, v1, cat)
		b.AddBidirectional(v1, v2, cat)
		return b.Build()
	}
	gA := buildGraph(roadnet.Residential)
	gB := buildGraph(roadnet.Primary) // same shape, different categories/times
	model, err := pathrank.New(gA.NumVertices(), pathrank.Config{
		EmbeddingDim: 4, Hidden: 3, Variant: pathrank.PRA2, Body: pathrank.GRUBody, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(&pathrank.Artifact{Graph: gA, Model: model}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.snap.Load().cache.add(queryKey{src: 0, dst: 2}, []pathrank.Ranked{{Score: 0.5}})

	info, err := s.Swap(&pathrank.Artifact{Graph: gB, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if info.Changed {
		t.Fatal("model fingerprint should be unchanged")
	}
	if info.CachePreserved {
		t.Fatal("cache must not survive a graph change, even with identical weights")
	}
	if got := s.snap.Load().cache.len(); got != 0 {
		t.Fatalf("stale entries survive the graph swap: %d", got)
	}

	// Same-graph (content-identical, distinct object) swap still preserves.
	info, err = s.Swap(&pathrank.Artifact{Graph: buildGraph(roadnet.Primary), Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if !info.CachePreserved {
		t.Fatal("content-identical graph should preserve the cache")
	}
}

// TestReloadEndpoint exercises /v1/reload against a real artifact file:
// success, corrupt file, and no configured path.
func TestReloadEndpoint(t *testing.T) {
	art := loadedTestArtifact(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.prart")
	if err := pathrank.SaveArtifactFileAtomic(path, variantArtifact(t, art, 777)); err != nil {
		t.Fatal(err)
	}

	s, err := New(art, Config{ArtifactPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	before := s.Fingerprint()
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	if s.Fingerprint() == before {
		t.Fatal("reload did not swap the artifact")
	}

	// Corrupt file → error status, server keeps serving the old snapshot.
	if err := os.WriteFile(path, []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	current := s.Fingerprint()
	resp, err = http.Post(ts.URL+"/v1/reload", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt reload status %d, want 500", resp.StatusCode)
	}
	if s.Fingerprint() != current {
		t.Fatal("failed reload must not change the serving snapshot")
	}
	if s.reloadErrors.Value() == 0 {
		t.Fatal("reload_errors not incremented")
	}

	// No path configured anywhere → 400.
	s2, err := New(art, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	resp, err = http.Post(ts2.URL+"/v1/reload", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("pathless reload status %d, want 400", resp.StatusCode)
	}
}

// TestWatchArtifactHotSwaps proves the file watcher picks up an atomically
// replaced bundle and swaps it in without a reload call.
func TestWatchArtifactHotSwaps(t *testing.T) {
	art := loadedTestArtifact(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.prart")
	if err := pathrank.SaveArtifactFileAtomic(path, art); err != nil {
		t.Fatal(err)
	}
	s, err := New(art, Config{ArtifactPath: path, WatchInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.WatchArtifact(ctx)

	before := s.Fingerprint()
	next := variantArtifact(t, art, 31337)
	// A same-second rename can leave mtime unchanged on coarse filesystems;
	// the watcher also compares size, but give mtime a nudge for good
	// measure.
	time.Sleep(20 * time.Millisecond)
	if err := pathrank.SaveArtifactFileAtomic(path, next); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for s.Fingerprint() == before {
		select {
		case <-deadline:
			t.Fatal("watcher did not swap within 5s")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if s.swapsTotal.Value() == 0 {
		t.Fatal("swaps_total not incremented by watcher")
	}
}
