package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pathrank/internal/pathrank"
)

// benchPairs builds a rotation of query pairs spread across the graph so a
// load test exercises many distinct candidate generations.
func benchPairs(art *pathrank.Artifact, n int) []RankRequest {
	v := art.Graph.NumVertices()
	pairs := make([]RankRequest, n)
	for i := range pairs {
		src := (i * 13) % v
		dst := (v - 1 - (i*29)%v) % v
		if src == dst {
			dst = (dst + 1) % v
		}
		pairs[i] = RankRequest{Src: int64(src), Dst: int64(dst)}
	}
	return pairs
}

// serveRankLoad drives POST /v1/rank with parallel clients over a rotation
// of query pairs and reports request throughput.
func serveRankLoad(b *testing.B, cfg Config, distinctPairs int) {
	art := loadedTestArtifact(b)
	s, err := New(art, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	pairs := benchPairs(art, distinctPairs)
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 64

	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := pairs[int(next.Add(1))%len(pairs)]
			body, _ := json.Marshal(req)
			resp, err := client.Post(ts.URL+"/v1/rank", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				resp.Body.Close()
				return
			}
			var rr RankResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				b.Error(err)
				resp.Body.Close()
				return
			}
			resp.Body.Close()
			if len(rr.Paths) == 0 {
				b.Error("empty ranking")
				return
			}
		}
	})
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "req/s")
	}
	total := s.cacheHits.Value() + s.cacheMisses.Value()
	if total > 0 {
		b.ReportMetric(float64(s.cacheHits.Value())/float64(total), "cache_hit_ratio")
	}
}

// BenchmarkServeRank is the serving-layer load test: parallel HTTP clients,
// 16 distinct OD pairs, LRU cache enabled — the steady-state hot path of a
// deployed ranking service.
func BenchmarkServeRank(b *testing.B) {
	serveRankLoad(b, Config{}, 16)
}

// BenchmarkServeRankUncached disables the result cache, so every request
// pays candidate generation plus NN scoring.
func BenchmarkServeRankUncached(b *testing.B) {
	serveRankLoad(b, Config{CacheSize: -1}, 64)
}

// BenchmarkServeRankBatched is the uncached load with micro-batched NN
// scoring.
func BenchmarkServeRankBatched(b *testing.B) {
	serveRankLoad(b, Config{CacheSize: -1, BatchWindow: 500 * time.Microsecond, BatchMaxPaths: 256}, 64)
}
