// Package serve exposes a trained PathRank artifact as an online ranking
// service over HTTP.
//
// The server loads an Artifact once at startup and answers concurrent
// POST /v1/rank queries with the exact rankings an in-process Ranker.Query
// would produce: candidate generation runs on pooled spath workspaces, an
// LRU cache short-circuits repeated (src, dst, k) queries, a singleflight
// group collapses duplicate in-flight queries so a thundering herd costs
// one computation, and an optional micro-batcher coalesces the NN scoring
// of requests that arrive within a short window into one parallel sweep.
//
// GET /healthz reports liveness and artifact shape; GET /metrics exports
// the server's expvar counters together with the Go runtime's memstats.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"time"

	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the listen address for Run (e.g. ":8080").
	Addr string
	// CacheSize bounds the LRU result cache in entries; 0 uses the default
	// (4096) and negative disables caching.
	CacheSize int
	// BatchWindow > 0 enables micro-batching: a request's NN scoring waits
	// up to this long to be coalesced with concurrently arriving requests.
	BatchWindow time.Duration
	// BatchMaxPaths caps the paths per coalesced scoring sweep (default 256).
	BatchMaxPaths int
	// MaxK caps the per-request candidate-set override (default 32).
	MaxK int
	// ShutdownTimeout bounds graceful drain on Run cancellation (default 5s).
	ShutdownTimeout time.Duration
	// OnListen, when non-nil, is invoked with the bound address once the
	// listener is open (used by tests and for port-0 deployments).
	OnListen func(net.Addr)
}

// Server answers ranking queries against one loaded artifact. Create it
// with New; all methods are safe for concurrent use.
type Server struct {
	cfg    Config
	art    *pathrank.Artifact
	ranker *pathrank.Ranker
	cache  *lruCache
	flight *flightGroup
	batch  *batcher
	start  time.Time

	vars          *expvar.Map
	reqTotal      expvar.Int
	rankOK        expvar.Int
	rankErrors    expvar.Int
	cacheHits     expvar.Int
	cacheMisses   expvar.Int
	flightShared  expvar.Int
	batchFlushes  expvar.Int
	batchPaths    expvar.Int
	latencyNanos  expvar.Int
	inFlightGauge expvar.Int
}

// New builds a Server around a loaded artifact.
func New(art *pathrank.Artifact, cfg Config) (*Server, error) {
	if art == nil || art.Graph == nil || art.Model == nil {
		return nil, fmt.Errorf("serve: artifact needs a graph and a model")
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 4096
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 32
	}
	if cfg.ShutdownTimeout <= 0 {
		cfg.ShutdownTimeout = 5 * time.Second
	}
	s := &Server{
		cfg:    cfg,
		art:    art,
		ranker: art.NewRanker(),
		cache:  newLRUCache(cfg.CacheSize),
		flight: newFlightGroup(),
		start:  time.Now(),
	}
	if cfg.BatchWindow > 0 {
		s.batch = newBatcher(art.Model, cfg.BatchWindow, cfg.BatchMaxPaths)
		s.batch.onFlush = func(reqs, paths int) {
			s.batchFlushes.Add(1)
			s.batchPaths.Add(int64(paths))
		}
	}
	// The map is intentionally not expvar.Published: tests run many servers
	// in one process and Publish panics on duplicate names. The /metrics
	// handler serves it directly instead.
	s.vars = new(expvar.Map).Init()
	s.vars.Set("requests_total", &s.reqTotal)
	s.vars.Set("rank_ok", &s.rankOK)
	s.vars.Set("rank_errors", &s.rankErrors)
	s.vars.Set("cache_hits", &s.cacheHits)
	s.vars.Set("cache_misses", &s.cacheMisses)
	s.vars.Set("singleflight_shared", &s.flightShared)
	s.vars.Set("batch_flushes", &s.batchFlushes)
	s.vars.Set("batch_paths", &s.batchPaths)
	s.vars.Set("rank_latency_ns_total", &s.latencyNanos)
	s.vars.Set("in_flight", &s.inFlightGauge)
	return s, nil
}

// Close releases background resources (the micro-batch dispatcher). The
// server must not serve requests afterwards; Run calls it on shutdown.
func (s *Server) Close() {
	if s.batch != nil {
		s.batch.stop()
	}
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rank", s.handleRank)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Run listens on cfg.Addr and serves until ctx is canceled, then drains
// in-flight requests gracefully (bounded by cfg.ShutdownTimeout) and
// releases the batcher.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	if s.cfg.OnListen != nil {
		s.cfg.OnListen(ln.Addr())
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
		defer cancel()
		shutErr := hs.Shutdown(shutCtx)
		<-errc // Serve has returned http.ErrServerClosed
		s.Close()
		return shutErr
	case err := <-errc:
		s.Close()
		return err
	}
}

// RankRequest is the body of POST /v1/rank.
type RankRequest struct {
	Src int64 `json:"src"`
	Dst int64 `json:"dst"`
	// K overrides the artifact's candidate-set size when positive.
	K int `json:"k,omitempty"`
}

// RankedPath is one entry of a rank response, best first.
type RankedPath struct {
	Rank     int     `json:"rank"`
	Score    float64 `json:"score"`
	LengthM  float64 `json:"length_m"`
	TimeS    float64 `json:"time_s"`
	Hops     int     `json:"hops"`
	Vertices []int64 `json:"vertices"`
}

// RankResponse is the body of a successful POST /v1/rank.
type RankResponse struct {
	Src    int64        `json:"src"`
	Dst    int64        `json:"dst"`
	K      int          `json:"k"`
	Cached bool         `json:"cached"`
	Shared bool         `json:"shared"`
	Paths  []RankedPath `json:"paths"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Add(1)
	s.inFlightGauge.Add(1)
	defer s.inFlightGauge.Add(-1)
	startReq := time.Now()

	var req RankRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.rankErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	n := int64(s.art.Graph.NumVertices())
	if req.Src < 0 || req.Src >= n || req.Dst < 0 || req.Dst >= n {
		s.rankErrors.Add(1)
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("src/dst must be in [0,%d)", n)})
		return
	}
	if req.K < 0 || req.K > s.cfg.MaxK {
		s.rankErrors.Add(1)
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("k must be in [0,%d]", s.cfg.MaxK)})
		return
	}

	// Normalize an explicit k equal to the artifact's configured K to the
	// default (0): the queries are identical, so they must share one cache
	// entry and one in-flight computation.
	reqK := req.K
	if reqK == s.ranker.Candidates.K {
		reqK = 0
	}
	key := queryKey{src: roadnet.VertexID(req.Src), dst: roadnet.VertexID(req.Dst), k: reqK}
	resp := RankResponse{Src: req.Src, Dst: req.Dst, K: req.K}

	ranked, ok := s.cache.get(key)
	if ok {
		s.cacheHits.Add(1)
		resp.Cached = true
	} else {
		s.cacheMisses.Add(1)
		var err error
		var shared bool
		ranked, err, shared = s.flight.do(key, func() ([]pathrank.Ranked, error) {
			return s.rank(key)
		})
		if shared {
			s.flightShared.Add(1)
			resp.Shared = true
		}
		if err != nil {
			s.rankErrors.Add(1)
			status := http.StatusInternalServerError
			if errors.Is(err, spath.ErrNoPath) {
				status = http.StatusNotFound
			}
			writeJSON(w, status, errorResponse{Error: err.Error()})
			return
		}
		if !shared {
			s.cache.add(key, ranked)
		}
	}

	resp.Paths = make([]RankedPath, len(ranked))
	for i, rk := range ranked {
		verts := make([]int64, len(rk.Path.Vertices))
		for j, v := range rk.Path.Vertices {
			verts[j] = int64(v)
		}
		resp.Paths[i] = RankedPath{
			Rank:     i + 1,
			Score:    rk.Score,
			LengthM:  rk.Path.Length(s.art.Graph),
			TimeS:    rk.Path.Time(s.art.Graph),
			Hops:     rk.Path.Len(),
			Vertices: verts,
		}
	}
	s.rankOK.Add(1)
	s.latencyNanos.Add(time.Since(startReq).Nanoseconds())
	writeJSON(w, http.StatusOK, resp)
}

// rank computes one uncached query: candidate generation on the pooled
// spath workspaces, NN scoring (micro-batched when enabled), and the same
// stable ordering Ranker.Query uses — so results are bit-identical to an
// in-process query.
func (s *Server) rank(key queryKey) ([]pathrank.Ranked, error) {
	rk := *s.ranker
	// An explicit k equal to the configured K must not change anything —
	// the query is semantically identical to the default-k one. A genuine
	// override scales a configured D-TkDI probe bound proportionally so
	// the probe-to-k ratio the artifact was built with is preserved.
	if key.k > 0 && key.k != rk.Candidates.K {
		if rk.Candidates.MaxProbe > 0 && rk.Candidates.K > 0 {
			rk.Candidates.MaxProbe = rk.Candidates.MaxProbe * key.k / rk.Candidates.K
		}
		rk.Candidates.K = key.k
	}
	cands, err := rk.CandidatePaths(key.src, key.dst)
	if err != nil {
		return nil, err
	}
	var scores []float64
	if s.batch != nil {
		scores = s.batch.score(cands)
	} else {
		scores = s.art.Model.ScoreBatch(cands)
	}
	return pathrank.RankScored(cands, scores), nil
}

type healthResponse struct {
	Status      string  `json:"status"`
	UptimeS     float64 `json:"uptime_s"`
	Vertices    int     `json:"vertices"`
	Edges       int     `json:"edges"`
	ModelParams int     `json:"model_params"`
	CacheSize   int     `json:"cache_entries"`
	Batching    bool    `json:"batching"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.reqTotal.Add(1)
	writeJSON(w, http.StatusOK, healthResponse{
		Status:      "ok",
		UptimeS:     time.Since(s.start).Seconds(),
		Vertices:    s.art.Graph.NumVertices(),
		Edges:       s.art.Graph.NumEdges(),
		ModelParams: s.art.Model.NumParams(),
		CacheSize:   s.cache.len(),
		Batching:    s.batch != nil,
	})
}

// handleMetrics exports the server's expvar map alongside the runtime's
// standard expvar variables (memstats).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.reqTotal.Add(1)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\"serve\": %s", s.vars.String())
	if mem := expvar.Get("memstats"); mem != nil {
		fmt.Fprintf(w, ", \"memstats\": %s", mem.String())
	}
	fmt.Fprint(w, "}\n")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
