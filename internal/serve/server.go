// Package serve exposes a trained PathRank artifact as an online ranking
// service over HTTP.
//
// The server answers concurrent ranking queries with the exact rankings an
// in-process Ranker.Query would produce: candidate generation runs on
// pooled spath workspaces, an LRU cache short-circuits repeated queries, a
// singleflight group collapses duplicate in-flight queries so a thundering
// herd costs one computation, and an optional micro-batcher coalesces the
// NN scoring of requests that arrive within a short window into one
// parallel sweep.
//
// Two API versions share one core. POST /v2/rank is the primary surface:
// a single query or a batch, per-request overrides of the candidate regime
// (k, strategy, diversity threshold, weight metric, engine), per-item
// errors in batches with one NN sweep across the whole batch, explain
// stats, and a server-side deadline (timeout_ms) that cancels an in-flight
// Yen enumeration mid-search. Failures carry typed codes (internal/api)
// mapped onto statuses: 400 invalid, 404 unroutable, 408 canceled, 504
// deadline, 503 backlog with Retry-After. POST /v1/rank remains as a thin
// adapter over the same core with byte-compatible responses.
//
// The artifact is not fixed for the server's lifetime: the serving state
// lives in an atomically swappable snapshot (see snapshot.go). POST
// /v1/reload re-reads the artifact bundle from disk and hot-swaps it under
// live traffic — in-flight requests finish against the snapshot they
// started on, and the result cache survives a swap iff the model
// fingerprint is unchanged. A background watcher (WatchArtifact) performs
// the same swap automatically when the artifact file changes, which closes
// the loop with the streaming retrainer in internal/stream. POST /v1/ingest
// forwards raw GPS trajectories to a pluggable Ingestor.
//
// GET /healthz reports liveness, artifact shape, and lineage. GET /metrics
// exports the server's instrumentation (latency histograms, cache and shed
// counters, typed error counts, swap timings — see internal/obsv and
// docs/OPERATIONS.md) in the Prometheus text format; the pre-existing
// expvar counters remain at GET /metrics.json.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pathrank/internal/api"
	"pathrank/internal/geo"
	"pathrank/internal/obsv"
	"pathrank/internal/pathrank"
	"pathrank/internal/spath"
	"pathrank/internal/traj"
)

// maxRankBody bounds a /v1/rank request body; maxIngestBody bounds a
// /v1/ingest body (GPS streams are bulkier than rank queries).
const (
	maxRankBody   = 1 << 20
	maxIngestBody = 8 << 20
)

// Ingestor accepts raw GPS trajectories for asynchronous processing. The
// streaming pipeline in internal/stream implements it; any error is
// reported to the client as 503 (the canonical cause is a full ingest
// queue, which the client should retry later).
type Ingestor interface {
	IngestGPS(records []traj.GPSRecord) error
}

// HealthSource reports the live pipeline's health for GET /healthz. The
// streaming pipeline in internal/stream implements it; the interface
// keeps this package from importing the pipeline.
type HealthSource interface {
	Health() api.PipelineHealth
}

// ProvenanceSource reports data-provenance state for GET /v1/provenance:
// the Merkle commitments of the serving generation, WAL health, and
// per-trajectory inclusion proofs. The streaming pipeline in
// internal/stream implements it; like Ingestor, the interface keeps this
// package from importing the pipeline. An error from ProveTrajectory
// means no proof exists for that sequence number in the current batch
// (reported to the client as 404).
type ProvenanceSource interface {
	Provenance() api.ProvenanceInfo
	ProveTrajectory(seq int64) (api.InclusionProof, error)
}

// Config parameterizes a Server.
type Config struct {
	// Addr is the listen address for Run (e.g. ":8080").
	Addr string
	// CacheSize bounds the LRU result cache in entries; 0 uses the default
	// (4096) and negative disables caching.
	CacheSize int
	// BatchWindow > 0 enables micro-batching: a request's NN scoring waits
	// up to this long to be coalesced with concurrently arriving requests.
	BatchWindow time.Duration
	// BatchMaxPaths caps the paths per coalesced scoring sweep (default 256).
	BatchMaxPaths int
	// DisableFusedScoring pins NN scoring to the per-path reference
	// implementation instead of the batched (fused) kernels. The two are
	// bit-identical (test-enforced), so this is an operational escape
	// hatch, not an accuracy trade-off. The PATHRANK_FUSED_SCORING
	// environment knob offers the same switch process-wide.
	DisableFusedScoring bool
	// MaxK caps the per-request candidate-set override (default 32).
	MaxK int
	// MaxBatch caps the queries per /v2/rank batch request (default 64).
	MaxBatch int
	// MaxInFlight caps concurrently executing rank requests (v1 + v2);
	// requests over the cap are shed immediately with 503 backlog +
	// Retry-After instead of queuing unboundedly. 0 (the default)
	// disables shedding.
	MaxInFlight int
	// MaxTimeout caps a request's timeout_ms deadline (default 30s);
	// longer requests are clamped, not rejected.
	MaxTimeout time.Duration
	// Engine selects the shortest-path backend for candidate generation:
	// "ch" (default), "alt", or "dijkstra". The structure persisted in the
	// artifact is used when it matches; otherwise it is built once at
	// snapshot creation and reused across hot swaps of the same road
	// network.
	Engine string
	// ShutdownTimeout bounds graceful drain on Run cancellation (default 5s).
	ShutdownTimeout time.Duration
	// ArtifactPath is the bundle /v1/reload re-reads when the request names
	// no path, and the file WatchArtifact monitors.
	ArtifactPath string
	// WatchInterval > 0 makes Run poll ArtifactPath for changes and
	// hot-swap automatically (see WatchArtifact).
	WatchInterval time.Duration
	// CanaryQueries enables the canary gate that guards every hot swap:
	// before a candidate snapshot is published, this many pinned golden
	// origin-destination queries are scored on it and checked for finite
	// scores, non-empty rankings, and bounded rank divergence against the
	// live snapshot. A violation refuses the swap (the live snapshot keeps
	// serving), quarantines file-loaded artifacts, and surfaces through
	// /healthz and pathrank_swap_rejected_total. 0 (the default) disables
	// the gate.
	CanaryQueries int
	// CanaryMaxDivergence bounds the normalized Kendall-tau distance
	// between the candidate's and the live snapshot's rankings of the
	// golden queries, in [0,1]; 0 uses the default (0.9 — only wholesale
	// reversals fail). Only enforced when the road network is unchanged.
	CanaryMaxDivergence float64
	// CanaryTimeout bounds the whole canary gate (default 5s); a gate that
	// cannot finish in time refuses the swap.
	CanaryTimeout time.Duration
	// Pipeline, when non-nil, contributes the live pipeline's health state
	// to GET /healthz: a degraded pipeline (failing WAL) flips the
	// top-level health status to "degraded". The streaming pipeline in
	// internal/stream implements it.
	Pipeline HealthSource
	// Ingest, when non-nil, enables POST /v1/ingest.
	Ingest Ingestor
	// Provenance, when non-nil, backs GET /v1/provenance with live
	// pipeline state (WAL health, inclusion proofs). Without it the
	// endpoint still serves the lineage commitments of the serving
	// artifact, but cannot issue proofs.
	Provenance ProvenanceSource
	// MaxIngestRecords caps the GPS records accepted per trajectory
	// (default 20000, ~5.5 h at 1 Hz). Together with the bounded ingest
	// queue this bounds the bytes a client can park behind 202 responses;
	// without it, maximal bodies times the queue depth is gigabytes.
	MaxIngestRecords int
	// Metrics, when non-nil, is the registry the server registers its
	// Prometheus-format metric families on — pathrank-serve passes one
	// shared registry here and to the stream pipeline so GET /metrics
	// exports both. nil gives the server a private registry.
	Metrics *obsv.Registry
	// Logf, when non-nil, receives operational log lines (swaps, watcher
	// errors).
	Logf func(format string, args ...any)
	// OnListen, when non-nil, is invoked with the bound address once the
	// listener is open (used by tests and for port-0 deployments).
	OnListen func(net.Addr)
}

// Server answers ranking queries against a hot-swappable artifact snapshot.
// Create it with New; all methods are safe for concurrent use.
type Server struct {
	cfg   Config
	start time.Time

	// snap is the current serving snapshot. snapMu orders request
	// acquisition against retirement: a request bumps the snapshot's
	// refcount under RLock, and Swap installs a new snapshot under Lock
	// before retiring the old one — so the creation reference cannot be
	// dropped between a request's Load and its Add.
	snap   atomic.Pointer[snapshot]
	snapMu sync.RWMutex
	// reloadMu serializes Swap/Reload so concurrent /v1/reload requests
	// cannot interleave snapshot construction and installation.
	reloadMu sync.Mutex

	obs *serveMetrics

	// lastRejection is the most recent canary-gate refusal (nil before the
	// first); swapRejected counts them. Both are surfaced in /healthz.
	lastRejection atomic.Pointer[SwapRejection]

	vars           *expvar.Map
	swapRejected   expvar.Int
	reqTotal       expvar.Int
	rankOK         expvar.Int
	rankErrors     expvar.Int
	cacheHits      expvar.Int
	cacheMisses    expvar.Int
	flightShared   expvar.Int
	batchFlushes   expvar.Int
	batchPaths     expvar.Int
	latencyNanos   expvar.Int
	inFlightGauge  expvar.Int
	swapsTotal     expvar.Int
	reloadErrors   expvar.Int
	ingestAccepted expvar.Int
	ingestRejected expvar.Int
}

// engineKind resolves the configured engine name; New has validated it.
func (c Config) engineKind() spath.EngineKind {
	if c.Engine == "" {
		return spath.EngineCH
	}
	kind, err := spath.ParseEngineKind(c.Engine)
	if err != nil {
		return spath.EngineCH
	}
	return kind
}

// New builds a Server around a loaded artifact.
func New(art *pathrank.Artifact, cfg Config) (*Server, error) {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 4096
	}
	if cfg.Engine != "" {
		if _, err := spath.ParseEngineKind(cfg.Engine); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 32
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Second
	}
	if cfg.ShutdownTimeout <= 0 {
		cfg.ShutdownTimeout = 5 * time.Second
	}
	if cfg.MaxIngestRecords <= 0 {
		cfg.MaxIngestRecords = 20000
	}
	s := &Server{cfg: cfg, start: time.Now()}
	snap, err := s.buildSnapshot(art, nil)
	if err != nil {
		return nil, err
	}
	s.snap.Store(snap)
	// The Prometheus registry: per-server unless the caller shares one.
	// Registered after the snapshot is installed, because the scrape-time
	// gauges read it.
	reg := cfg.Metrics
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	s.obs = newServeMetrics(reg, s)
	// The map is intentionally not expvar.Published: tests run many servers
	// in one process and Publish panics on duplicate names. The /metrics
	// handler serves it directly instead.
	s.vars = new(expvar.Map).Init()
	s.vars.Set("requests_total", &s.reqTotal)
	s.vars.Set("rank_ok", &s.rankOK)
	s.vars.Set("rank_errors", &s.rankErrors)
	s.vars.Set("cache_hits", &s.cacheHits)
	s.vars.Set("cache_misses", &s.cacheMisses)
	s.vars.Set("singleflight_shared", &s.flightShared)
	s.vars.Set("batch_flushes", &s.batchFlushes)
	s.vars.Set("batch_paths", &s.batchPaths)
	s.vars.Set("rank_latency_ns_total", &s.latencyNanos)
	s.vars.Set("in_flight", &s.inFlightGauge)
	s.vars.Set("swaps_total", &s.swapsTotal)
	s.vars.Set("swap_rejections", &s.swapRejected)
	s.vars.Set("reload_errors", &s.reloadErrors)
	s.vars.Set("ingest_accepted", &s.ingestAccepted)
	s.vars.Set("ingest_rejected", &s.ingestRejected)
	if cfg.Provenance != nil {
		// Live gauges, not counters: /metrics re-reads the pipeline's
		// provenance state (WAL segment inventory, sync frontier, fsync
		// latency, current Merkle roots) on every scrape.
		s.vars.Set("provenance", expvar.Func(func() any { return cfg.Provenance.Provenance() }))
	}
	return s, nil
}

// buildSnapshot constructs a snapshot and wires its batcher to the
// server's counters.
func (s *Server) buildSnapshot(art *pathrank.Artifact, prev *snapshot) (*snapshot, error) {
	snap, err := newSnapshot(art, s.cfg, prev)
	if err != nil {
		return nil, err
	}
	if snap.batch != nil {
		snap.batch.onFlush = s.onBatchFlush
	}
	return snap, nil
}

// onBatchFlush observes one micro-batch scoring sweep in both metric
// surfaces.
func (s *Server) onBatchFlush(reqs, paths int) {
	s.batchFlushes.Add(1)
	s.batchPaths.Add(int64(paths))
	if s.obs != nil {
		s.obs.flushPaths.Observe(float64(paths))
	}
}

// acquire returns the current snapshot with a reference held; the caller
// must release() it when done.
func (s *Server) acquire() *snapshot {
	s.snapMu.RLock()
	snap := s.snap.Load()
	snap.refs.Add(1)
	s.snapMu.RUnlock()
	return snap
}

// Snapshot is a pinned, refcounted view of the serving state, for
// sidecar handlers mounted next to the server's own (the shard-serving
// layer's boundary and corridor endpoints). The pin participates in the
// same lifecycle as the server's request handling: a hot swap installed
// while the pin is held retires the old snapshot only after Release.
type Snapshot struct {
	snap *snapshot
}

// PinSnapshot acquires the current snapshot; the caller must Release it.
func (s *Server) PinSnapshot() Snapshot {
	return Snapshot{snap: s.acquire()}
}

// Artifact returns the pinned snapshot's artifact (graph, model, shard
// metadata). Valid until Release.
func (sn Snapshot) Artifact() *pathrank.Artifact {
	return sn.snap.art
}

// Fingerprint returns the pinned model's hex fingerprint.
func (sn Snapshot) Fingerprint() string {
	return sn.snap.fpHex
}

// Release drops the pin.
func (sn Snapshot) Release() {
	sn.snap.release()
}

// SwapInfo describes the outcome of a hot swap.
type SwapInfo struct {
	// Fingerprint is the hex SHA-256 of the now-serving model.
	Fingerprint string `json:"fingerprint"`
	// Previous is the fingerprint of the replaced model.
	Previous string `json:"previous_fingerprint"`
	// Changed reports whether the model actually differs.
	Changed bool `json:"changed"`
	// CachePreserved reports whether the result cache survived the swap
	// (it does iff the fingerprint and candidate config are identical).
	CachePreserved bool `json:"cache_preserved"`
	// Generation is the lineage generation of the new artifact.
	Generation int `json:"generation"`
}

// Swap atomically replaces the serving artifact. In-flight requests finish
// against the snapshot they started on; the old snapshot's batcher is
// stopped only after the last of them releases it. The result cache is
// preserved iff the new model's fingerprint and candidate configuration
// match the old ones (cached rankings are then bit-identical by
// construction); otherwise it is fully invalidated.
//
// With cfg.CanaryQueries > 0 the candidate snapshot must pass the canary
// gate (see canary.go) before it is installed; a refusal wraps
// ErrSwapRejected and leaves the current snapshot serving.
func (s *Server) Swap(art *pathrank.Artifact) (SwapInfo, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	swapStart := time.Now()
	old := s.snap.Load()
	next, err := s.buildSnapshot(art, old)
	if err != nil {
		return SwapInfo{}, err
	}
	if s.cfg.CanaryQueries > 0 {
		if cerr := s.canaryCheck(next, old); cerr != nil {
			// The candidate never serves: retiring it drops its creation
			// reference and stops its batcher. Components it shares with
			// the live snapshot (cache, engine) are unaffected.
			next.retire()
			return SwapInfo{}, s.rejectSwap(next, art.Lineage.Generation, cerr)
		}
	}
	s.snapMu.Lock()
	s.snap.Store(next)
	s.snapMu.Unlock()
	old.retire()
	s.swapsTotal.Add(1)
	if s.obs != nil {
		s.obs.swaps.Inc()
		s.obs.swapDuration.Observe(time.Since(swapStart).Seconds())
	}
	info := SwapInfo{
		Fingerprint:    next.fpHex,
		Previous:       old.fpHex,
		Changed:        next.fp != old.fp,
		CachePreserved: next.cache != nil && next.cache == old.cache,
		Generation:     art.Lineage.Generation,
	}
	if s.cfg.Logf != nil {
		s.cfg.Logf("swapped artifact: gen %d fingerprint %.12s (changed=%v cache_preserved=%v)",
			info.Generation, info.Fingerprint, info.Changed, info.CachePreserved)
	}
	return info, nil
}

// Reload reads the artifact bundle at path (or cfg.ArtifactPath when path
// is empty) and hot-swaps it in. An artifact the canary gate refuses is
// quarantined: the file is renamed aside so the watcher does not re-offer
// the same bad bundle, and the next good write lands under the original
// name.
func (s *Server) Reload(path string) (SwapInfo, error) {
	if path == "" {
		path = s.cfg.ArtifactPath
	}
	if path == "" {
		return SwapInfo{}, fmt.Errorf("serve: no artifact path configured")
	}
	art, err := pathrank.LoadArtifactFile(path)
	if err != nil {
		s.reloadErrors.Add(1)
		s.obs.reloadErrors.Inc()
		return SwapInfo{}, err
	}
	info, err := s.Swap(art)
	if err != nil {
		s.reloadErrors.Add(1)
		s.obs.reloadErrors.Inc()
		if errors.Is(err, ErrSwapRejected) {
			s.quarantineArtifact(path)
		}
	}
	return info, err
}

// quarantineArtifact moves a canary-rejected artifact file aside, naming
// the quarantine after the refused fingerprint, and records the location
// in the rejection /healthz reports. A rename failure (e.g. the retrainer
// already replaced the file) is logged and otherwise ignored: quarantine
// is a hygiene measure, the swap was already refused.
func (s *Server) quarantineArtifact(path string) {
	rej := s.lastRejection.Load()
	if rej == nil {
		return
	}
	qpath := fmt.Sprintf("%s.quarantined-%.12s", path, rej.Fingerprint)
	if err := os.Rename(path, qpath); err != nil {
		if s.cfg.Logf != nil {
			s.cfg.Logf("quarantine %s: %v", path, err)
		}
		return
	}
	updated := *rej
	updated.Quarantined = qpath
	s.lastRejection.Store(&updated)
	if s.cfg.Logf != nil {
		s.cfg.Logf("quarantined rejected artifact: %s -> %s", path, qpath)
	}
}

// Fingerprint returns the hex fingerprint of the currently served model.
func (s *Server) Fingerprint() string {
	snap := s.acquire()
	defer snap.release()
	return snap.fpHex
}

// Close releases background resources (the current snapshot's micro-batch
// dispatcher). The server must not serve requests afterwards; Run calls it
// on shutdown. Retired snapshots stop their own batchers as they drain.
func (s *Server) Close() {
	snap := s.snap.Load()
	if snap != nil && snap.batch != nil {
		snap.batch.stop()
	}
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rank", s.handleRank)
	mux.HandleFunc("POST /v2/rank", s.handleRankV2)
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("GET /v1/provenance", s.handleProvenance)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsExpvar)
	return mux
}

// Metrics returns the server's Prometheus registry (the one behind GET
// /metrics): cfg.Metrics when one was supplied, a private registry
// otherwise.
func (s *Server) Metrics() *obsv.Registry {
	return s.obs.reg
}

// Run listens on cfg.Addr and serves until ctx is canceled, then drains
// in-flight requests gracefully (bounded by cfg.ShutdownTimeout) and
// releases the batcher. When cfg.WatchInterval > 0 it also watches
// cfg.ArtifactPath and hot-swaps on changes.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	if s.cfg.OnListen != nil {
		s.cfg.OnListen(ln.Addr())
	}
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	if s.cfg.WatchInterval > 0 && s.cfg.ArtifactPath != "" {
		go s.WatchArtifact(watchCtx)
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
		defer cancel()
		shutErr := hs.Shutdown(shutCtx)
		<-errc // Serve has returned http.ErrServerClosed
		s.Close()
		return shutErr
	case err := <-errc:
		s.Close()
		return err
	}
}

// WatchArtifact polls cfg.ArtifactPath every cfg.WatchInterval and
// hot-swaps the bundle in when its mtime or size changes, until ctx is
// canceled. The streaming retrainer writes artifacts atomically
// (rename-into-place), so a change observed here is normally a complete
// bundle; a torn manual copy is rejected by the checksum and — unlike the
// pre-fault-injection watcher, which waited for the next mtime change —
// retried on an exponential backoff, so a copy that completes without
// touching the mtime again is still picked up. Canary-rejected bundles
// are not retried (Reload quarantined the file; the stat fails until the
// next good write).
func (s *Server) WatchArtifact(ctx context.Context) {
	if s.cfg.ArtifactPath == "" || s.cfg.WatchInterval <= 0 {
		return
	}
	var lastMod time.Time
	var lastSize int64 = -1
	if st, err := os.Stat(s.cfg.ArtifactPath); err == nil {
		lastMod, lastSize = st.ModTime(), st.Size()
	}
	tick := time.NewTicker(s.cfg.WatchInterval)
	defer tick.Stop()
	backoff := s.cfg.WatchInterval
	var retryAt time.Time // zero: no failed reload pending retry
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		st, err := os.Stat(s.cfg.ArtifactPath)
		if err != nil {
			// Missing file: quarantined or mid-replace; wait for the next
			// write to recreate it.
			continue
		}
		changed := !st.ModTime().Equal(lastMod) || st.Size() != lastSize
		if !changed && (retryAt.IsZero() || time.Now().Before(retryAt)) {
			continue
		}
		lastMod, lastSize = st.ModTime(), st.Size()
		if _, err := s.Reload(s.cfg.ArtifactPath); err != nil {
			if s.cfg.Logf != nil {
				s.cfg.Logf("watcher: reload %s: %v", s.cfg.ArtifactPath, err)
			}
			if errors.Is(err, ErrSwapRejected) {
				// The canary verdict is deterministic for these bytes and
				// the file is quarantined — retrying would re-reject.
				retryAt, backoff = time.Time{}, s.cfg.WatchInterval
				continue
			}
			retryAt = time.Now().Add(backoff)
			if backoff < 16*s.cfg.WatchInterval {
				backoff *= 2
			}
			continue
		}
		retryAt, backoff = time.Time{}, s.cfg.WatchInterval
	}
}

// RankRequest is the body of POST /v1/rank.
type RankRequest struct {
	Src int64 `json:"src"`
	Dst int64 `json:"dst"`
	// K overrides the artifact's candidate-set size when positive.
	K int `json:"k,omitempty"`
}

// RankedPath is one entry of a rank response, best first. It is the same
// wire shape in both API versions.
type RankedPath = api.RankedPath

// RankResponse is the body of a successful POST /v1/rank.
type RankResponse struct {
	Src    int64        `json:"src"`
	Dst    int64        `json:"dst"`
	K      int          `json:"k"`
	Cached bool         `json:"cached"`
	Shared bool         `json:"shared"`
	Paths  []RankedPath `json:"paths"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// newBoundedDecoder wraps the request body in a size limit and a strict
// JSON decoder; shared by the v1 and v2 body readers.
func newBoundedDecoder(w http.ResponseWriter, r *http.Request, limit int64) *json.Decoder {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	return dec
}

// decodeJSON decodes a bounded JSON body, mapping an exceeded size limit to
// 413 and any other decoding failure to 400. It reports whether decoding
// succeeded; on failure the error response has already been written in the
// v1 shape.
func decodeJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	dec := newBoundedDecoder(w, r, limit)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
		} else {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		}
		return false
	}
	return true
}

// handleRank answers POST /v1/rank. It is a thin adapter over the v2 core
// (buildQuery/execQuery): a v1 request is exactly a v2 query with only the
// k override, and the response rendering below reproduces the v1 wire
// format byte for byte. Client-caused failures map through the typed error
// model (400 invalid, 404 unroutable, 408/504 context expiry) instead of
// blanket 500s; the v1 error body shape is unchanged.
func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Add(1)
	s.obs.requests.With("/v1/rank").Inc()
	s.inFlightGauge.Add(1)
	defer s.inFlightGauge.Add(-1)
	startReq := time.Now()

	if s.overloaded() {
		s.rankErrors.Add(1)
		s.obs.shed.Inc()
		s.obs.rankErrors.With(api.CodeBacklog).Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: backlogMessage})
		return
	}

	var req RankRequest
	if !decodeJSON(w, r, maxRankBody, &req) {
		s.rankErrors.Add(1)
		s.obs.rankErrors.With(api.CodeInvalid).Inc()
		return
	}

	// Pin the serving snapshot for the whole request: a hot swap installed
	// mid-request must not mix two models' state.
	snap := s.acquire()
	defer snap.release()
	defer s.obs.observeLatency("/v1/rank", snap, startReq)

	cq, apiErr := s.buildQuery(snap, api.RankQuery{Src: req.Src, Dst: req.Dst, K: req.K})
	if apiErr != nil {
		s.rankErrors.Add(1)
		s.obs.rankErrors.With(apiErr.Code).Inc()
		writeJSON(w, apiErr.Status, errorResponse{Error: apiErr.Message})
		return
	}

	out := s.execQuery(r.Context(), snap, cq)
	if out.err != nil {
		s.rankErrors.Add(1)
		e := apiErrorFrom(out.err)
		s.obs.rankErrors.With(e.Code).Inc()
		writeJSON(w, e.Status, errorResponse{Error: out.err.Error()})
		return
	}

	resp := RankResponse{
		Src: req.Src, Dst: req.Dst, K: req.K,
		Cached: out.cached, Shared: out.shared,
		Paths: rankedPaths(snap, out.ranked),
	}
	s.rankOK.Add(1)
	s.latencyNanos.Add(time.Since(startReq).Nanoseconds())
	writeJSON(w, http.StatusOK, resp)
}

// ReloadRequest is the (optional) body of POST /v1/reload.
type ReloadRequest struct {
	// Artifact overrides the configured artifact path for this reload.
	Artifact string `json:"artifact,omitempty"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Add(1)
	s.obs.requests.With("/v1/reload").Inc()
	var req ReloadRequest
	// An empty body means "reload the configured artifact".
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRankBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	info, err := s.Reload(req.Artifact)
	if err != nil {
		// A failure to read an artifact the client itself named is a
		// client error (bad path, corrupt upload), not a server fault;
		// only failures of the server's own configured bundle are 500s.
		status := http.StatusInternalServerError
		if req.Artifact != "" || s.cfg.ArtifactPath == "" {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// GPSSample is one raw positioning record of an ingested trajectory.
type GPSSample struct {
	Lon float64 `json:"lon"`
	Lat float64 `json:"lat"`
	// T is seconds since the start of the trip.
	T float64 `json:"t"`
}

// IngestRequest is the body of POST /v1/ingest: one raw GPS trajectory.
type IngestRequest struct {
	Records []GPSSample `json:"records"`
}

// IngestResponse acknowledges an accepted trajectory.
type IngestResponse struct {
	Queued int `json:"queued"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Add(1)
	s.obs.requests.With("/v1/ingest").Inc()
	reject := func() {
		s.ingestRejected.Add(1)
		s.obs.ingest.With("rejected").Inc()
	}
	if s.cfg.Ingest == nil {
		reject()
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "ingestion is not enabled on this server"})
		return
	}
	var req IngestRequest
	if !decodeJSON(w, r, maxIngestBody, &req) {
		reject()
		return
	}
	if len(req.Records) == 0 {
		reject()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "trajectory has no records"})
		return
	}
	if len(req.Records) > s.cfg.MaxIngestRecords {
		reject()
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("trajectory has %d records, limit is %d — split long traces",
				len(req.Records), s.cfg.MaxIngestRecords)})
		return
	}
	recs := make([]traj.GPSRecord, len(req.Records))
	for i, sm := range req.Records {
		recs[i] = traj.GPSRecord{Point: geo.Point{Lon: sm.Lon, Lat: sm.Lat}, TimeOffset: sm.T}
	}
	if err := s.cfg.Ingest.IngestGPS(recs); err != nil {
		reject()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	s.ingestAccepted.Add(1)
	s.obs.ingest.With("accepted").Inc()
	writeJSON(w, http.StatusAccepted, IngestResponse{Queued: len(req.Records)})
}

// handleProvenance answers GET /v1/provenance. Without a seq parameter it
// reports the provenance commitments of the serving generation (plus WAL
// health when a live pipeline backs the server); with ?seq=N it issues a
// Merkle inclusion proof for the trajectory with that ingest sequence
// number, or 404 when the trajectory is not in the current training batch.
func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Add(1)
	s.obs.requests.With("/v1/provenance").Inc()
	if seqStr := r.URL.Query().Get("seq"); seqStr != "" {
		if s.cfg.Provenance == nil {
			writeJSON(w, http.StatusNotFound,
				errorResponse{Error: "no live pipeline on this server: inclusion proofs unavailable"})
			return
		}
		seq, err := strconv.ParseInt(seqStr, 10, 64)
		if err != nil || seq <= 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "seq must be a positive integer"})
			return
		}
		proof, err := s.cfg.Provenance.ProveTrajectory(seq)
		if err != nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, proof)
		return
	}
	if s.cfg.Provenance != nil {
		writeJSON(w, http.StatusOK, s.cfg.Provenance.Provenance())
		return
	}
	// No pipeline: the artifact's lineage still carries the commitments.
	snap := s.acquire()
	defer snap.release()
	writeJSON(w, http.StatusOK, api.ProvenanceInfo{
		Generation: snap.art.Lineage.Generation,
		DataRoot:   snap.art.Lineage.DataRoot,
		ChainRoot:  snap.art.Lineage.ChainRoot,
		BatchSize:  snap.art.Lineage.TrainedOn,
	})
}

type healthResponse struct {
	Status        string   `json:"status"`
	APIVersions   []string `json:"api_versions"`
	UptimeS       float64  `json:"uptime_s"`
	Vertices      int      `json:"vertices"`
	Edges         int      `json:"edges"`
	ModelParams   int      `json:"model_params"`
	CacheSize     int      `json:"cache_entries"`
	Batching      bool     `json:"batching"`
	Engine        string   `json:"engine"`
	PrepEmbedded  bool     `json:"prep_embedded"`
	Fingerprint   string   `json:"fingerprint"`
	Generation    int      `json:"generation"`
	ParentModel   string   `json:"parent_fingerprint,omitempty"`
	Swaps         int64    `json:"swaps"`
	SnapshotAgeS  float64  `json:"snapshot_age_s"`
	IngestEnabled bool     `json:"ingest_enabled"`
	// DataRoot and ChainRoot surface the serving artifact's provenance
	// commitments; WAL reports the trajectory log when a live pipeline
	// backs the server.
	DataRoot  string         `json:"data_root,omitempty"`
	ChainRoot string         `json:"chain_root,omitempty"`
	WAL       *api.WALStatus `json:"wal,omitempty"`
	// SwapRejections counts canary-gate refusals; LastSwapRejection
	// details the most recent one (what was kept out of service and why).
	SwapRejections    int64          `json:"swap_rejections,omitempty"`
	LastSwapRejection *SwapRejection `json:"last_swap_rejection,omitempty"`
	// Pipeline is the live pipeline's health; a degraded pipeline flips
	// the top-level Status to "degraded" (the server itself still serves).
	Pipeline *api.PipelineHealth `json:"pipeline,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.reqTotal.Add(1)
	s.obs.requests.With("/healthz").Inc()
	snap := s.acquire()
	defer snap.release()
	resp := healthResponse{
		Status:        "ok",
		APIVersions:   []string{"v1", "v2"},
		UptimeS:       time.Since(s.start).Seconds(),
		Vertices:      snap.art.Graph.NumVertices(),
		Edges:         snap.art.Graph.NumEdges(),
		ModelParams:   snap.art.Model.NumParams(),
		CacheSize:     snap.cache.len(),
		Batching:      snap.batch != nil,
		Engine:        snap.engine.Kind().String(),
		PrepEmbedded:  snap.art.Prep != nil,
		Fingerprint:   snap.fpHex,
		Generation:    snap.art.Lineage.Generation,
		ParentModel:   snap.art.Lineage.Parent,
		Swaps:         s.swapsTotal.Value(),
		SnapshotAgeS:  time.Since(snap.loaded).Seconds(),
		IngestEnabled: s.cfg.Ingest != nil,
		DataRoot:      snap.art.Lineage.DataRoot,
		ChainRoot:     snap.art.Lineage.ChainRoot,
	}
	if s.cfg.Provenance != nil {
		resp.WAL = s.cfg.Provenance.Provenance().WAL
	}
	resp.SwapRejections = s.swapRejected.Value()
	resp.LastSwapRejection = s.lastRejection.Load()
	if s.cfg.Pipeline != nil {
		ph := s.cfg.Pipeline.Health()
		resp.Pipeline = &ph
		if ph.State == api.PipelineDegraded {
			// Ranking still works (the snapshot is intact), but ingest
			// durability is impaired — surfaced at the top level so plain
			// liveness probes notice without parsing the pipeline block.
			resp.Status = api.PipelineDegraded
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics exports the server's metric registry in Prometheus text
// exposition format. See docs/OPERATIONS.md for the metric reference.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Add(1)
	s.obs.requests.With("/metrics").Inc()
	s.obs.reg.ServeHTTP(w, r)
}

// handleMetricsExpvar exports the server's expvar map alongside the
// runtime's standard expvar variables (memstats) — the pre-Prometheus
// metrics surface, kept as a compat alias at GET /metrics.json.
func (s *Server) handleMetricsExpvar(w http.ResponseWriter, _ *http.Request) {
	s.reqTotal.Add(1)
	s.obs.requests.With("/metrics.json").Inc()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\"serve\": %s", s.vars.String())
	if mem := expvar.Get("memstats"); mem != nil {
		fmt.Fprintf(w, ", \"memstats\": %s", mem.String())
	}
	fmt.Fprint(w, "}\n")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
