package serve

import (
	"container/list"
	"sync"

	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
)

// queryKey identifies one rank query for caching and in-flight collapsing.
// Every per-request override of the candidate regime is part of the key;
// buildQuery normalizes overrides equal to the snapshot's defaults to zero
// values, so a default-k v1 query, an explicit-k v2 query, and a v2 query
// naming the snapshot's own strategy all share one cache entry and one
// in-flight computation.
type queryKey struct {
	src, dst roadnet.VertexID
	k        int
	// strategy/weight/engine are normalized pathrank choice enums
	// (0 = snapshot default).
	strategy uint8
	weight   uint8
	engine   uint8
	// thrBits is math.Float64bits of an overriding D-TkDI threshold
	// (0 = snapshot default); maxProbe overrides the probe budget.
	thrBits  uint64
	maxProbe int
}

// lruCache is a mutex-guarded LRU map from query to ranked result. Cached
// values are treated as immutable by all readers.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[queryKey]*list.Element
}

type lruEntry struct {
	key queryKey
	val []pathrank.Ranked
}

func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[queryKey]*list.Element, capacity)}
}

func (c *lruCache) get(key queryKey) ([]pathrank.Ranked, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) add(key queryKey, val []pathrank.Ranked) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
