package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"time"

	"pathrank/internal/api"
	"pathrank/internal/dataset"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// This file implements POST /v2/rank, the context-aware, per-request-
// configurable query surface. /v1/rank is a thin adapter over the same
// core (see handleRank): both funnel through buildQuery → execQuery, so
// the two versions cannot drift apart in semantics — v1 is exactly a v2
// query with only the k override, rendered in the v1 response shape.

// coreQuery is a validated, normalized query ready to execute against a
// pinned snapshot: the cache/singleflight key plus the core RankRequest.
type coreQuery struct {
	key     queryKey
	req     pathrank.RankRequest
	explain bool
}

// buildQuery validates q against the snapshot and the server limits and
// normalizes overrides that equal the snapshot's defaults to zero values
// (see queryKey). A non-nil return error carries the api code and status.
func (s *Server) buildQuery(snap *snapshot, q api.RankQuery) (coreQuery, *api.Error) {
	n := int64(snap.art.Graph.NumVertices())
	if q.Src < 0 || q.Src >= n || q.Dst < 0 || q.Dst >= n {
		return coreQuery{}, invalidErrf("src/dst must be in [0,%d)", n)
	}
	if q.K < 0 || q.K > s.cfg.MaxK {
		return coreQuery{}, invalidErrf("k must be in [0,%d]", s.cfg.MaxK)
	}
	if q.Threshold < 0 || q.Threshold > 1 {
		return coreQuery{}, invalidErrf("threshold must be in (0,1], got %g", q.Threshold)
	}
	if q.MaxProbe < 0 {
		return coreQuery{}, invalidErrf("max_probe must be non-negative")
	}
	strategy, err := pathrank.ParseStrategyChoice(q.Strategy)
	if err != nil {
		return coreQuery{}, apiErrorFrom(err)
	}
	weight, err := pathrank.ParseWeightKind(q.Weight)
	if err != nil {
		return coreQuery{}, apiErrorFrom(err)
	}
	engine, err := pathrank.ParseEngineChoice(q.Engine)
	if err != nil {
		return coreQuery{}, apiErrorFrom(err)
	}
	// Reject contradictions BEFORE normalization folds the explicit
	// choice into the default — the wire API must agree with the
	// in-process Rank, which errors on a prepared engine named together
	// with the time metric (prepared structures serve the length metric).
	if weight == pathrank.WeightTime && (engine == pathrank.EngineALT || engine == pathrank.EngineCH) {
		return coreQuery{}, invalidErrf(
			"engine %s serves the length metric; use weight=length or engine=dijkstra", engine)
	}

	// Normalize: an override naming the snapshot's own default must hit
	// the same cache entry as the query that omits it. The effective
	// default mirrors what the ranker resolves when its config is empty.
	def := snap.ranker.Candidates
	if def.K <= 0 {
		def = dataset.DefaultConfig()
	}
	k := q.K
	if k == def.K {
		k = 0
	}
	switch {
	case strategy == pathrank.StrategyTkDI && def.Strategy == dataset.TkDI,
		strategy == pathrank.StrategyDTkDI && def.Strategy == dataset.DTkDI:
		strategy = pathrank.StrategyAuto
	}
	threshold := q.Threshold
	if threshold == def.Threshold {
		threshold = 0
	}
	maxProbe := q.MaxProbe
	// An explicit max_probe equal to the snapshot default is only a
	// no-op when k is default too: a genuine k override makes the
	// default probe budget SCALE with k, while an explicit one pins it.
	if maxProbe == def.MaxProbe && k == 0 {
		maxProbe = 0
	}
	if weight == pathrank.WeightLength {
		// The default metric is length; the explicit spelling is a no-op.
		weight = pathrank.WeightAuto
	}
	if snap.engine != nil {
		switch {
		case engine == pathrank.EngineNone && snap.engine.Kind() == spath.EngineDijkstra,
			engine == pathrank.EngineALT && snap.engine.Kind() == spath.EngineALT,
			engine == pathrank.EngineCH && snap.engine.Kind() == spath.EngineCH:
			engine = pathrank.EngineAuto
		}
	}

	cq := coreQuery{
		key: queryKey{
			src: roadnet.VertexID(q.Src), dst: roadnet.VertexID(q.Dst),
			k: k, strategy: uint8(strategy), weight: uint8(weight),
			engine: uint8(engine), maxProbe: maxProbe,
		},
		req: pathrank.RankRequest{
			Src: roadnet.VertexID(q.Src), Dst: roadnet.VertexID(q.Dst),
			K: k, Strategy: strategy, Threshold: threshold,
			MaxProbe: maxProbe, Weight: weight, Engine: engine,
		},
		explain: q.Explain,
	}
	if threshold > 0 {
		cq.key.thrBits = math.Float64bits(threshold)
	}
	return cq, nil
}

// queryOutcome is the result of executing one core query.
type queryOutcome struct {
	ranked []pathrank.Ranked
	// stats is non-nil only when this caller generated the candidates
	// itself (neither cached nor shared) — cached and shared results
	// report no generation timing.
	stats          *pathrank.RankStats
	cached, shared bool
	err            error
}

// execQuery answers one validated query against a pinned snapshot: LRU
// cache, then singleflight, then ctx-aware candidate generation on the
// pooled workspaces and NN scoring (micro-batched when enabled) — the
// exact pipeline behind both /v1/rank and /v2/rank singles. When the
// leading computation of a shared flight is canceled, its waiters observe
// the cancellation error too; that is the standard singleflight trade-off
// and only affects requests that would have recomputed identical work.
func (s *Server) execQuery(ctx context.Context, snap *snapshot, cq coreQuery) queryOutcome {
	if ranked, ok := snap.cache.get(cq.key); ok {
		s.cacheHits.Add(1)
		s.obs.cacheEvents.With(cacheHit).Inc()
		return queryOutcome{ranked: ranked, cached: true}
	}
	s.cacheMisses.Add(1)
	s.obs.cacheEvents.With(cacheMiss).Inc()
	var stats pathrank.RankStats
	ranked, err, shared := snap.flight.do(ctx, cq.key, func() ([]pathrank.Ranked, error) {
		genStart := time.Now()
		cands, st, err := snap.ranker.CandidatesFor(ctx, cq.req)
		if err != nil {
			return nil, err
		}
		st.GenNanos = time.Since(genStart).Nanoseconds()
		scoreStart := time.Now()
		scores := snap.score(cands)
		st.ScoreNanos = time.Since(scoreStart).Nanoseconds()
		stats = st
		return pathrank.RankScored(cands, scores), nil
	})
	if shared {
		s.flightShared.Add(1)
		s.obs.cacheEvents.With(cacheShared).Inc()
	}
	if err != nil {
		return queryOutcome{err: err, shared: shared}
	}
	if !shared {
		snap.cache.add(cq.key, ranked)
		return queryOutcome{ranked: ranked, stats: &stats}
	}
	return queryOutcome{ranked: ranked, shared: true}
}

// score runs one NN scoring sweep over paths, through the micro-batcher
// when it is enabled.
func (p *snapshot) score(paths []spath.Path) []float64 {
	if p.batch != nil {
		return p.batch.score(paths)
	}
	return p.scoreFn(paths)
}

// nopCancel avoids allocating a context.WithCancel on the timeoutless
// hot path; the request context alone already carries disconnect
// cancellation.
var nopCancel context.CancelFunc = func() {}

// requestContext derives the computation context for a rank request: the
// HTTP request's context (canceled when the client disconnects), bounded
// by the body's timeout_ms capped at cfg.MaxTimeout. The returned cancel
// must always be called.
func (s *Server) requestContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if timeoutMs <= 0 {
		return ctx, nopCancel
	}
	d := time.Duration(timeoutMs) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(ctx, d)
}

func (s *Server) handleRankV2(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Add(1)
	s.obs.requests.With("/v2/rank").Inc()
	s.inFlightGauge.Add(1)
	defer s.inFlightGauge.Add(-1)
	startReq := time.Now()

	if s.overloaded() {
		s.rankErrors.Add(1)
		s.obs.shed.Inc()
		s.obs.rankErrors.With(api.CodeBacklog).Inc()
		writeV2Error(w, &api.Error{
			Status: http.StatusServiceUnavailable, Code: api.CodeBacklog, Message: backlogMessage,
		})
		return
	}

	var req api.RankRequest
	if apiErr := decodeJSONErr(w, r, maxRankBody, &req); apiErr != nil {
		s.rankErrors.Add(1)
		s.obs.rankErrors.With(apiErr.Code).Inc()
		writeV2Error(w, apiErr)
		return
	}

	// Pin the serving snapshot for the whole request (batch included): a
	// hot swap installed mid-request must not mix two models' state.
	snap := s.acquire()
	defer snap.release()
	defer s.obs.observeLatency("/v2/rank", snap, startReq)

	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	// A present-but-empty "queries" array is an empty batch (answered as
	// such), not a single query: only an absent key selects the inline
	// single-query form.
	if req.Queries == nil {
		s.rankV2Single(ctx, w, snap, req.RankQuery, startReq)
		return
	}
	s.rankV2Batch(ctx, w, snap, req.Queries, startReq)
}

func (s *Server) rankV2Single(ctx context.Context, w http.ResponseWriter, snap *snapshot, q api.RankQuery, startReq time.Time) {
	cq, apiErr := s.buildQuery(snap, q)
	if apiErr != nil {
		s.rankErrors.Add(1)
		s.obs.rankErrors.With(apiErr.Code).Inc()
		writeV2Error(w, apiErr)
		return
	}
	out := s.execQuery(ctx, snap, cq)
	if out.err != nil {
		s.rankErrors.Add(1)
		apiErr := apiErrorFrom(out.err)
		s.obs.rankErrors.With(apiErr.Code).Inc()
		writeV2Error(w, apiErr)
		return
	}
	s.rankOK.Add(1)
	s.latencyNanos.Add(time.Since(startReq).Nanoseconds())
	writeJSON(w, http.StatusOK, buildResult(snap, q, cq, out))
}

// rankV2Batch answers a batch of queries with per-item errors and one NN
// scoring sweep over the union of all uncached candidate sets — the batch
// itself is the micro-batch, so coalescing does not wait on a gather
// window (and composes with the batcher when one is configured, which
// additionally coalesces across concurrent batches). Candidate generation
// for the uncached items runs concurrently on pooled workspaces, bounded
// by GOMAXPROCS, so a batch is no slower than the same queries issued as
// parallel singles; a deadline expiring mid-batch fails the unfinished
// items with the deadline code. Batch items bypass the singleflight
// group: collapsing is the cache's job once the batch lands, and per-item
// blocking on foreign flights would serialize the sweep.
func (s *Server) rankV2Batch(ctx context.Context, w http.ResponseWriter, snap *snapshot, queries []api.RankQuery, startReq time.Time) {
	if len(queries) > s.cfg.MaxBatch {
		s.rankErrors.Add(1)
		s.obs.rankErrors.With(api.CodeInvalid).Inc()
		writeV2Error(w, invalidErrf("batch has %d queries, limit is %d", len(queries), s.cfg.MaxBatch))
		return
	}
	s.obs.batchQueries.Observe(float64(len(queries)))
	type pendingItem struct {
		idx    int
		cq     coreQuery
		cands  []spath.Path
		stats  pathrank.RankStats
		ranked []pathrank.Ranked
		err    error
	}
	items := make([]api.BatchItem, len(queries))
	var pend []*pendingItem
	// Duplicate queries inside one batch (a naive client fan-in) compute
	// once: followers reuse their leader's ranking, marked shared.
	leaders := make(map[queryKey]*pendingItem)
	type follower struct {
		idx    int
		leader *pendingItem
	}
	var followers []follower
	nerr := 0
	for i, q := range queries {
		items[i].Index = i
		cq, apiErr := s.buildQuery(snap, q)
		if apiErr != nil {
			s.rankErrors.Add(1)
			s.obs.rankErrors.With(apiErr.Code).Inc()
			items[i].Error = apiErr
			nerr++
			continue
		}
		if ranked, ok := snap.cache.get(cq.key); ok {
			s.cacheHits.Add(1)
			s.obs.cacheEvents.With(cacheHit).Inc()
			items[i].Response = buildResult(snap, q, cq, queryOutcome{ranked: ranked, cached: true})
			continue
		}
		if lead, ok := leaders[cq.key]; ok {
			// A follower shares its leader's computation, the in-batch
			// analogue of a singleflight-shared answer.
			s.obs.cacheEvents.With(cacheShared).Inc()
			followers = append(followers, follower{idx: i, leader: lead})
			continue
		}
		s.cacheMisses.Add(1)
		s.obs.cacheEvents.With(cacheMiss).Inc()
		p := &pendingItem{idx: i, cq: cq}
		leaders[cq.key] = p
		pend = append(pend, p)
	}

	// Generate all uncached candidate sets concurrently; each worker owns
	// its pooled workspaces, and items only write their own entry.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pend) {
		workers = len(pend)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for _, p := range pend {
			wg.Add(1)
			go func(p *pendingItem) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				genStart := time.Now()
				p.cands, p.stats, p.err = snap.ranker.CandidatesFor(ctx, p.cq.req)
				p.stats.GenNanos = time.Since(genStart).Nanoseconds()
			}(p)
		}
		wg.Wait()
	} else {
		for _, p := range pend {
			genStart := time.Now()
			p.cands, p.stats, p.err = snap.ranker.CandidatesFor(ctx, p.cq.req)
			p.stats.GenNanos = time.Since(genStart).Nanoseconds()
		}
	}

	var all []spath.Path
	scored := pend[:0]
	for _, p := range pend {
		if p.err != nil {
			s.rankErrors.Add(1)
			items[p.idx].Error = apiErrorFrom(p.err)
			s.obs.rankErrors.With(items[p.idx].Error.Code).Inc()
			nerr++
			continue
		}
		scored = append(scored, p)
		all = append(all, p.cands...)
	}

	// One NN sweep over the whole batch, then split per item.
	var scoreNs int64
	var scores []float64
	if len(all) > 0 {
		scoreStart := time.Now()
		scores = snap.score(all)
		scoreNs = time.Since(scoreStart).Nanoseconds()
	}
	off := 0
	for _, p := range scored {
		p.ranked = pathrank.RankScored(p.cands, scores[off:off+len(p.cands):off+len(p.cands)])
		off += len(p.cands)
		snap.cache.add(p.cq.key, p.ranked)
		// The sweep is shared; attribute its cost to every item so
		// explain output stays honest about what one query paid for.
		p.stats.ScoreNanos = scoreNs
		items[p.idx].Response = buildResult(snap, queries[p.idx], p.cq,
			queryOutcome{ranked: p.ranked, stats: &p.stats})
	}
	for _, f := range followers {
		if f.leader.err != nil {
			s.rankErrors.Add(1)
			items[f.idx].Error = apiErrorFrom(f.leader.err)
			s.obs.rankErrors.With(items[f.idx].Error.Code).Inc()
			nerr++
			continue
		}
		items[f.idx].Response = buildResult(snap, queries[f.idx], f.leader.cq,
			queryOutcome{ranked: f.leader.ranked, shared: true})
	}
	if nerr < len(queries) {
		s.rankOK.Add(1)
	}
	s.latencyNanos.Add(time.Since(startReq).Nanoseconds())
	writeJSON(w, http.StatusOK, api.BatchResponse{Results: items, Errors: nerr})
}

// buildResult renders one successful outcome in the v2 shape.
func buildResult(snap *snapshot, q api.RankQuery, cq coreQuery, out queryOutcome) *api.RankResult {
	res := &api.RankResult{
		Src:    q.Src,
		Dst:    q.Dst,
		K:      q.K,
		Cached: out.cached,
		Shared: out.shared,
		Paths:  rankedPaths(snap, out.ranked),
	}
	if cq.explain && out.stats != nil {
		st := out.stats
		res.Stats = &api.RankStats{
			Strategy:   st.Strategy.String(),
			K:          st.K,
			Threshold:  st.Threshold,
			MaxProbe:   st.MaxProbe,
			Weight:     st.Weight.String(),
			Engine:     st.Engine.String(),
			Candidates: st.Candidates,
			GenNs:      st.GenNanos,
			ScoreNs:    st.ScoreNanos,
		}
	}
	return res
}

// rankedPaths renders a ranking as wire paths; shared by the v1 and v2
// response builders, so the two versions stay byte-compatible per path.
func rankedPaths(snap *snapshot, ranked []pathrank.Ranked) []api.RankedPath {
	paths := make([]api.RankedPath, len(ranked))
	for i, rk := range ranked {
		verts := make([]int64, len(rk.Path.Vertices))
		for j, v := range rk.Path.Vertices {
			verts[j] = int64(v)
		}
		paths[i] = api.RankedPath{
			Rank:     i + 1,
			Score:    rk.Score,
			LengthM:  rk.Path.Length(snap.art.Graph),
			TimeS:    rk.Path.Time(snap.art.Graph),
			Hops:     rk.Path.Len(),
			Vertices: verts,
		}
	}
	return paths
}

// backlogMessage is the shed-load error text of both API versions.
const backlogMessage = "server is at its concurrent-rank capacity; retry shortly"

// overloaded reports whether the rank-concurrency cap is exceeded; the
// caller has already counted itself into the in-flight gauge, so a cap of
// n admits n concurrent requests.
func (s *Server) overloaded() bool {
	return s.cfg.MaxInFlight > 0 && s.inFlightGauge.Value() > int64(s.cfg.MaxInFlight)
}

// invalidErrf builds an invalid-request api error.
func invalidErrf(format string, args ...any) *api.Error {
	return &api.Error{
		Status:  http.StatusBadRequest,
		Code:    api.CodeInvalid,
		Message: fmt.Sprintf(format, args...),
	}
}

// apiErrorFrom classifies err through the typed error model.
func apiErrorFrom(err error) *api.Error {
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae
	}
	code := pathrank.ErrorCodeOf(err)
	return &api.Error{Status: api.HTTPStatus(code), Code: code, Message: err.Error()}
}

// writeV2Error writes a v2 error envelope; backlog errors advertise a
// retry delay.
func writeV2Error(w http.ResponseWriter, e *api.Error) {
	if e.Status == 0 {
		e.Status = api.HTTPStatus(e.Code)
	}
	if e.Code == api.CodeBacklog {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, e.Status, api.ErrorEnvelope{Error: e})
}

// decodeJSONErr decodes a bounded JSON body, returning a typed error
// instead of writing a v1-shaped response (the v2 counterpart of
// decodeJSON).
func decodeJSONErr(w http.ResponseWriter, r *http.Request, limit int64, v any) *api.Error {
	dec := newBoundedDecoder(w, r, limit)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &api.Error{
				Status:  http.StatusRequestEntityTooLarge,
				Code:    api.CodeInvalid,
				Message: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
			}
		}
		return invalidErrf("bad request body: %v", err)
	}
	return nil
}
