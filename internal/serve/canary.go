package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"pathrank/internal/api"
	"pathrank/internal/pathrank"
	"pathrank/internal/spath"
)

// This file implements the canary gate that guards hot swaps: before Swap
// publishes a candidate snapshot, a pinned golden query set is scored on
// it and checked against invariants no healthy artifact violates. A
// corrupt-but-loadable artifact (weights NaN-poisoned on disk, a model
// trained into divergence) passes every checksum — the only place its
// damage is observable is in what it answers, so that is what the gate
// inspects.

// ErrSwapRejected is wrapped by every canary-gate refusal, so callers
// (Reload's quarantine, the watcher, the retrainer's publish hook) can
// tell "the artifact is bad" from "the swap mechanism failed".
var ErrSwapRejected = errors.New("serve: swap rejected by canary gate")

const (
	// defaultCanaryDivergence is the Config.CanaryMaxDivergence default: a
	// normalized Kendall-tau distance of 0.9 means the candidate nearly
	// inverted the live ranking of the golden queries. Incremental
	// retrains legitimately reorder some candidates, so the default only
	// catches wholesale reversals; operators tighten it per deployment.
	defaultCanaryDivergence = 0.9
	// defaultCanaryTimeout bounds the whole gate. A gate that cannot
	// finish in time refuses the swap — the safe side, since the live
	// snapshot keeps serving.
	defaultCanaryTimeout = 5 * time.Second
	// canarySeed pins the golden query set: the same graph always yields
	// the same origin-destination pairs, across processes and restarts.
	canarySeed = 0x9e3779b97f4a7c15
)

// canaryRNG is a splitmix64 stream; math/rand would also do, but an
// explicit implementation pins the golden set against stdlib changes.
type canaryRNG uint64

func (r *canaryRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	x := uint64(*r)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// canaryCheck scores the golden query set on the candidate snapshot and
// returns a non-nil reason when the candidate must not serve. Invariants:
// every golden query answers without error, every score is finite, every
// ranked path is non-empty, and (when the road network is unchanged) the
// candidate's ranking of the live snapshot's candidate sets diverges from
// the live ranking by at most CanaryMaxDivergence.
//
// The gate runs outside the request path: scoring goes directly through
// the snapshot's scoreFn (no result cache, no micro-batcher), so it
// neither pollutes the candidate's cache nor observes the live one.
func (s *Server) canaryCheck(next, live *snapshot) error {
	maxDiv := s.cfg.CanaryMaxDivergence
	if maxDiv <= 0 {
		maxDiv = defaultCanaryDivergence
	}
	timeout := s.cfg.CanaryTimeout
	if timeout <= 0 {
		timeout = defaultCanaryTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	n := next.art.Graph.NumVertices()
	if n < 2 {
		return nil
	}
	sameGraph := live != nil && live.graph == next.graph
	rng := canaryRNG(canarySeed)
	evaluated := 0
	worst := 0.0
	// Golden pairs are drawn deterministically from the candidate's own
	// vertex range; pairs the road network cannot route are skipped (that
	// is a property of the graph, not of the model under test), with a
	// bounded attempt budget so a sparsely connected network terminates.
	for attempts := 0; evaluated < s.cfg.CanaryQueries && attempts < s.cfg.CanaryQueries*8; attempts++ {
		src := int64(rng.next() % uint64(n))
		dst := int64(rng.next() % uint64(n))
		if src == dst {
			continue
		}
		cq, apiErr := s.buildQuery(next, api.RankQuery{Src: src, Dst: dst})
		if apiErr != nil {
			return fmt.Errorf("canary %d->%d: %s", src, dst, apiErr.Message)
		}
		cands, _, err := next.ranker.CandidatesFor(ctx, cq.req)
		if err != nil {
			if pathrank.ErrorCodeOf(err) == api.CodeUnroutable {
				continue
			}
			return fmt.Errorf("canary %d->%d: %w", src, dst, err)
		}
		if len(cands) == 0 {
			return fmt.Errorf("canary %d->%d: empty candidate set", src, dst)
		}
		scores := next.scoreFn(cands)
		for i, sc := range scores {
			if math.IsNaN(sc) || math.IsInf(sc, 0) {
				return fmt.Errorf("canary %d->%d: non-finite score %g at candidate %d", src, dst, sc, i)
			}
		}
		ranked := pathrank.RankScored(cands, scores)
		for _, rk := range ranked {
			if len(rk.Path.Vertices) == 0 {
				return fmt.Errorf("canary %d->%d: ranked an empty path", src, dst)
			}
		}
		// Candidate generation is model-independent, so on an unchanged
		// graph the live snapshot proposes the same paths and the two
		// rankings are directly comparable; only the NN scores reorder.
		if sameGraph {
			lcands, _, lerr := live.ranker.CandidatesFor(ctx, cq.req)
			if lerr == nil && len(lcands) >= 2 {
				lranked := pathrank.RankScored(lcands, live.scoreFn(lcands))
				if d := rankDivergence(lranked, ranked); d > worst {
					worst = d
				}
			}
		}
		evaluated++
	}
	// No routable golden pairs (tiny or fragmented network): nothing to
	// judge the candidate on, so the gate abstains rather than wedging
	// every future swap.
	if evaluated == 0 {
		return nil
	}
	if worst > maxDiv {
		return fmt.Errorf("canary rank divergence %.3f exceeds the %.3f bound vs the live snapshot", worst, maxDiv)
	}
	return nil
}

// rankDivergence is the normalized Kendall-tau distance between two
// rankings over their shared paths (keyed by vertex sequence): 0 when the
// candidate preserves the live order, 1 when it exactly inverts it. Fewer
// than two shared paths carry no order information and score 0.
func rankDivergence(live, cand []pathrank.Ranked) float64 {
	pos := make(map[string]int, len(live))
	for i, rk := range live {
		pos[pathKeyOf(rk.Path)] = i
	}
	order := make([]int, 0, len(cand))
	for _, rk := range cand {
		if p, ok := pos[pathKeyOf(rk.Path)]; ok {
			order = append(order, p)
		}
	}
	m := len(order)
	if m < 2 {
		return 0
	}
	inversions := 0
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if order[i] > order[j] {
				inversions++
			}
		}
	}
	return float64(inversions) / float64(m*(m-1)/2)
}

// pathKeyOf folds a path's vertex sequence into a map key.
func pathKeyOf(p spath.Path) string {
	b := make([]byte, 0, len(p.Vertices)*3)
	for _, v := range p.Vertices {
		b = binary.AppendVarint(b, int64(v))
	}
	return string(b)
}

// SwapRejection records one canary-gate refusal, surfaced in /healthz so
// an operator can see what was kept out of service and why.
type SwapRejection struct {
	// Time is when the gate refused the swap.
	Time time.Time `json:"time"`
	// Generation and Fingerprint identify the refused artifact.
	Generation  int    `json:"generation"`
	Fingerprint string `json:"fingerprint"`
	// Reason is the violated invariant.
	Reason string `json:"reason"`
	// Quarantined is where the artifact file was moved when the rejection
	// came through a file reload; empty for direct (publish-hook) swaps.
	Quarantined string `json:"quarantined,omitempty"`
}

// rejectSwap records a canary refusal in every surface (metric, expvar,
// /healthz) and returns the error Swap propagates.
func (s *Server) rejectSwap(next *snapshot, generation int, reason error) error {
	rej := &SwapRejection{
		Time:        time.Now(),
		Generation:  generation,
		Fingerprint: next.fpHex,
		Reason:      reason.Error(),
	}
	s.lastRejection.Store(rej)
	s.swapRejected.Add(1)
	s.obs.swapRejected.Inc()
	if s.cfg.Logf != nil {
		s.cfg.Logf("swap REJECTED: gen %d fingerprint %.12s: %v (still serving %.12s)",
			generation, next.fpHex, reason, s.snap.Load().fpHex)
	}
	return fmt.Errorf("%w: gen %d fingerprint %.12s: %v", ErrSwapRejected, generation, next.fpHex, reason)
}

// LastSwapRejection returns the most recent canary refusal, or nil.
func (s *Server) LastSwapRejection() *SwapRejection {
	return s.lastRejection.Load()
}
