package serve

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// scrapeProm fetches GET /metrics and parses the exposition into samples
// keyed by full series (name plus label set), failing the test on any
// text-format violation: a sample without a preceding TYPE, an unknown
// type, a malformed line, or a raw newline leaking out of a label value.
func scrapeProm(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics Content-Type = %q, want the Prometheus text format", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	samples := make(map[string]float64)
	typed := make(map[string]bool)
	for ln, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		switch {
		case line == "":
			t.Fatalf("line %d: empty line in exposition", ln+1)
		case strings.HasPrefix(line, "# HELP "):
			continue
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 || (parts[1] != "counter" && parts[1] != "gauge" && parts[1] != "histogram") {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			typed[parts[0]] = true
			continue
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value on sample line %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, valStr, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label set %q", ln+1, series)
			}
			name = series[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, series)
		}
		samples[series] = val
	}
	return samples
}

// TestMetricsEndpoint drives cached, uncached, shed, and invalid
// requests through the server and checks that GET /metrics is valid
// Prometheus text format whose counters moved accordingly.
func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 8})

	// Every registered family renders HELP/TYPE before any traffic, so a
	// scraper (and the docs test) sees the full metric surface up front.
	initial := scrapeProm(t, ts.URL)
	if initial["pathrank_load_shed_total"] != 0 {
		t.Fatalf("fresh server reports %v shed requests", initial["pathrank_load_shed_total"])
	}

	// One uncached query, then the identical query again (cache hit).
	body := `{"src":0,"dst":8,"k":3}`
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v2/rank", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rank %d: HTTP %d", i, resp.StatusCode)
		}
	}
	// A batch of three distinct queries.
	batch := `{"queries":[{"src":0,"dst":9},{"src":1,"dst":10},{"src":2,"dst":11}]}`
	resp, err := http.Post(ts.URL+"/v2/rank", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// A shed request: the in-flight gauge is pushed over MaxInFlight, so
	// the next arrival is rejected deterministically.
	s.inFlightGauge.Add(100)
	resp, err = http.Post(ts.URL+"/v2/rank", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	s.inFlightGauge.Add(-100)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded rank: HTTP %d, want 503", resp.StatusCode)
	}
	// An undecodable body.
	resp, err = http.Post(ts.URL+"/v2/rank", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	m := scrapeProm(t, ts.URL)
	reqs := m[`pathrank_http_requests_total{endpoint="/v2/rank"}`]
	if reqs != 5 {
		t.Fatalf("/v2/rank requests_total = %v, want 5", reqs)
	}
	if hits := m[`pathrank_cache_events_total{event="hit"}`]; hits < 1 {
		t.Fatalf("cache hits = %v, want >= 1", hits)
	}
	if misses := m[`pathrank_cache_events_total{event="miss"}`]; misses < 4 {
		t.Fatalf("cache misses = %v, want >= 4 (uncached single + 3 batch items)", misses)
	}
	if shed := m["pathrank_load_shed_total"]; shed != 1 {
		t.Fatalf("load_shed_total = %v, want 1", shed)
	}
	if v := m[`pathrank_rank_errors_total{code="backlog"}`]; v != 1 {
		t.Fatalf("backlog errors = %v, want 1", v)
	}
	if v := m[`pathrank_rank_errors_total{code="invalid_request"}`]; v != 1 {
		t.Fatalf("invalid_request errors = %v, want 1", v)
	}
	if v := m["pathrank_batch_queries_sum"]; v != 3 {
		t.Fatalf("batch_queries_sum = %v, want 3 (one 3-query batch)", v)
	}
	if v := m["pathrank_in_flight_requests"]; v != 0 {
		t.Fatalf("in_flight gauge = %v at rest", v)
	}
	if v := m["go_goroutines"]; v < 1 {
		t.Fatalf("go_goroutines = %v", v)
	}

	// The latency histogram observed the three completed rank exchanges
	// (shed and undecodable requests never pin a snapshot) with cumulative
	// monotone buckets.
	engine := s.snap.Load().engine.Kind().String()
	prefix := fmt.Sprintf(`pathrank_request_duration_seconds_bucket{endpoint="/v2/rank",engine="%s",le=`, engine)
	type bkt struct {
		le    float64
		count float64
	}
	var buckets []bkt
	for series, v := range m {
		if !strings.HasPrefix(series, prefix) {
			continue
		}
		leStr := strings.TrimSuffix(strings.Trim(strings.TrimPrefix(series, prefix), `"`), `"}`)
		le := math.Inf(1)
		if leStr != "+Inf" {
			var err error
			if le, err = strconv.ParseFloat(leStr, 64); err != nil {
				t.Fatalf("unparseable le bound in %s: %v", series, err)
			}
		}
		buckets = append(buckets, bkt{le, v})
	}
	if len(buckets) < 2 {
		t.Fatalf("no latency buckets for endpoint /v2/rank engine %s", engine)
	}
	sort.Slice(buckets, func(a, b int) bool { return buckets[a].le < buckets[b].le })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].count < buckets[i-1].count {
			t.Fatalf("buckets not cumulative: le=%g count %v < le=%g count %v",
				buckets[i].le, buckets[i].count, buckets[i-1].le, buckets[i-1].count)
		}
	}
	count := m[fmt.Sprintf(`pathrank_request_duration_seconds_count{endpoint="/v2/rank",engine="%s"}`, engine)]
	if inf := buckets[len(buckets)-1].count; inf != count || count != 3 {
		t.Fatalf("+Inf bucket = %v, count = %v, want both 3", inf, count)
	}
}

// TestMetricsLabelEscapingOverHTTP registers a family with hostile label
// values on the server's own registry and checks the scrape stays one
// line per sample, correctly escaped.
func TestMetricsLabelEscapingOverHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	c := s.Metrics().Counter("test_hostile_total", "Hostile labels.", "path")
	c.With("a\"b\\c\nd").Inc()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	want := `test_hostile_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(string(raw), want) {
		t.Fatalf("escaped sample %q missing from scrape", want)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "test_hostile_total{") && !strings.HasSuffix(line, " 1") {
			t.Fatalf("label value leaked a raw newline: %q", line)
		}
	}
}

// TestMetricsSingleflightShared: concurrent identical uncached queries
// must surface as singleflight_shared cache events.
func TestMetricsSingleflightShared(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const n = 8
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v2/rank", "application/json",
				strings.NewReader(`{"src":3,"dst":12,"k":4}`))
			if err == nil {
				resp.Body.Close()
			}
			done <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	m := scrapeProm(t, ts.URL)
	hit := m[`pathrank_cache_events_total{event="hit"}`]
	shared := m[`pathrank_cache_events_total{event="singleflight_shared"}`]
	miss := m[`pathrank_cache_events_total{event="miss"}`]
	if miss < 1 || hit+shared+miss != n {
		t.Fatalf("cache events hit=%v shared=%v miss=%v, want %d total with >=1 miss", hit, shared, miss, n)
	}
}
