package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pathrank/internal/chaos"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// TestCanaryAcceptsHealthyArtifact: with the gate enabled, an artifact
// with bit-identical weights (zero divergence, finite scores) must swap
// in normally.
func TestCanaryAcceptsHealthyArtifact(t *testing.T) {
	art := loadedTestArtifact(t)
	s, _ := newTestServer(t, Config{CanaryQueries: 6})
	if _, err := s.Swap(roundTripArtifact(t, art)); err != nil {
		t.Fatalf("canary rejected a healthy round-tripped artifact: %v", err)
	}
	if s.swapRejected.Value() != 0 {
		t.Fatalf("swap_rejections = %d after an accepted swap", s.swapRejected.Value())
	}
}

// TestCanaryRejectsPoisonedArtifact is the acceptance scenario of the
// gate: an artifact whose weights were NaN-poisoned on disk loads
// cleanly (valid bytes, valid shapes) and fails only in what it answers.
// The gate must refuse it, the old snapshot must keep serving, and the
// refusal must be visible in /healthz and the rejection counter.
func TestCanaryRejectsPoisonedArtifact(t *testing.T) {
	art := loadedTestArtifact(t)
	s, ts := newTestServer(t, Config{CanaryQueries: 6})
	before := s.Fingerprint()

	bad, err := chaos.PoisonArtifact(art)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Swap(bad); !errors.Is(err, ErrSwapRejected) {
		t.Fatalf("Swap(poisoned) = %v, want ErrSwapRejected", err)
	}
	if got := s.Fingerprint(); got != before {
		t.Fatalf("serving fingerprint changed across a rejected swap: %s -> %s", before, got)
	}
	if s.swapRejected.Value() != 1 {
		t.Fatalf("swap_rejections = %d, want 1", s.swapRejected.Value())
	}
	rej := s.LastSwapRejection()
	if rej == nil {
		t.Fatal("LastSwapRejection() = nil after a rejection")
	}
	if rej.Generation != bad.Lineage.Generation {
		t.Fatalf("rejection generation %d, want %d", rej.Generation, bad.Lineage.Generation)
	}

	// The old snapshot still answers.
	n := int64(art.Graph.NumVertices())
	resp, _ := postRank(t, ts.URL, RankRequest{Src: 0, Dst: n - 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rank after rejected swap: status %d", resp.StatusCode)
	}

	// And /healthz carries the refusal.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health struct {
		SwapRejections    int64          `json:"swap_rejections"`
		LastSwapRejection *SwapRejection `json:"last_swap_rejection"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.SwapRejections != 1 || health.LastSwapRejection == nil {
		t.Fatalf("healthz rejection surface: count=%d last=%v", health.SwapRejections, health.LastSwapRejection)
	}
}

// TestCanaryDivergenceBound: a freshly re-initialized model reorders —
// and on small candidate sets fully inverts — the live rankings. A
// tightened bound must catch it; the same candidate under the maximum
// bound (1.0: any order, but scores still finite) must pass, proving
// the knob, not the weights, decides.
func TestCanaryDivergenceBound(t *testing.T) {
	art := loadedTestArtifact(t)
	strict, _ := newTestServer(t, Config{CanaryQueries: 8, CanaryMaxDivergence: 1e-9})
	if _, err := strict.Swap(variantArtifact(t, art, 999)); !errors.Is(err, ErrSwapRejected) {
		t.Fatalf("Swap(variant) under a near-zero bound = %v, want ErrSwapRejected", err)
	}

	lax, _ := newTestServer(t, Config{CanaryQueries: 8, CanaryMaxDivergence: 1})
	if _, err := lax.Swap(variantArtifact(t, art, 999)); err != nil {
		t.Fatalf("Swap(variant) under the maximum bound: %v", err)
	}
}

// TestReloadQuarantinesRejectedArtifact: a canary rejection coming
// through the file-reload path must move the bad bundle aside so the
// watcher stops retrying it, and record where.
func TestReloadQuarantinesRejectedArtifact(t *testing.T) {
	art := loadedTestArtifact(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.prart")
	bad, err := chaos.PoisonArtifact(art)
	if err != nil {
		t.Fatal(err)
	}
	if err := pathrank.SaveArtifactFileAtomic(path, bad); err != nil {
		t.Fatal(err)
	}

	s, err := New(art, Config{ArtifactPath: path, CanaryQueries: 6})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if _, err := s.Reload(path); !errors.Is(err, ErrSwapRejected) {
		t.Fatalf("Reload(poisoned) = %v, want ErrSwapRejected", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("rejected artifact still at %s (stat err %v)", path, err)
	}
	rej := s.LastSwapRejection()
	if rej == nil || rej.Quarantined == "" {
		t.Fatalf("rejection does not record the quarantine path: %+v", rej)
	}
	if _, err := os.Stat(rej.Quarantined); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if filepath.Dir(rej.Quarantined) != dir {
		t.Fatalf("quarantined outside the artifact directory: %s", rej.Quarantined)
	}
}

// TestWatchArtifactTornWrite: the watcher observing a torn/corrupt
// artifact file must keep serving the old snapshot, count the failure,
// and pick up the next good write — the failure mode a non-atomic
// writer (or a crash mid-copy) produces.
func TestWatchArtifactTornWrite(t *testing.T) {
	art := loadedTestArtifact(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.prart")
	if err := pathrank.SaveArtifactFileAtomic(path, art); err != nil {
		t.Fatal(err)
	}
	s, err := New(art, Config{ArtifactPath: path, WatchInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.WatchArtifact(ctx)

	before := s.Fingerprint()
	// A torn write: the valid bundle truncated mid-file.
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // ensure a distinct mtime/size
	if err := os.WriteFile(path, good[:len(good)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(5 * time.Second)
	for s.reloadErrors.Value() == 0 {
		select {
		case <-deadline:
			t.Fatal("watcher never recorded the torn-file reload failure")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got := s.Fingerprint(); got != before {
		t.Fatalf("torn artifact changed the serving snapshot: %s -> %s", before, got)
	}

	// The next good (atomic) write must swap in despite the pending
	// backoff state.
	next := variantArtifact(t, art, 31338)
	if err := pathrank.SaveArtifactFileAtomic(path, next); err != nil {
		t.Fatal(err)
	}
	deadline = time.After(5 * time.Second)
	for s.Fingerprint() == before {
		select {
		case <-deadline:
			t.Fatal("watcher did not recover onto the next good artifact within 5s")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestRankDivergence pins the Kendall-tau normalization: identical order
// scores 0, full inversion 1, disjoint or trivial rankings 0.
func TestRankDivergence(t *testing.T) {
	mk := func(vertices ...roadnet.VertexID) pathrank.Ranked {
		return pathrank.Ranked{Path: spath.Path{Vertices: vertices}}
	}
	a, b, c := mk(1, 2), mk(3, 4), mk(5, 6)
	cases := []struct {
		name       string
		live, cand []pathrank.Ranked
		want       float64
	}{
		{"same order", []pathrank.Ranked{a, b, c}, []pathrank.Ranked{a, b, c}, 0},
		{"full inversion", []pathrank.Ranked{a, b, c}, []pathrank.Ranked{c, b, a}, 1},
		{"one swap of three", []pathrank.Ranked{a, b, c}, []pathrank.Ranked{a, c, b}, 1.0 / 3},
		{"disjoint", []pathrank.Ranked{a}, []pathrank.Ranked{b}, 0},
		{"single shared", []pathrank.Ranked{a, b}, []pathrank.Ranked{a, c}, 0},
	}
	for _, tc := range cases {
		if got := rankDivergence(tc.live, tc.cand); got != tc.want {
			t.Errorf("%s: rankDivergence = %v, want %v", tc.name, got, tc.want)
		}
	}
}
