package serve

import (
	"runtime"
	"time"

	"pathrank/internal/obsv"
)

// Cache-event and ingest-status label values of the serve metric families.
// Exported indirectly through docs/OPERATIONS.md; the label sets are fixed
// so dashboards can enumerate them.
const (
	cacheHit    = "hit"
	cacheMiss   = "miss"
	cacheShared = "singleflight_shared"
)

// serveMetrics is the server's Prometheus-format instrumentation, layered
// on top of the expvar counters (which remain as a compat alias at
// /metrics.json). One instance per Server, registered on either the
// caller-supplied registry (Config.Metrics — pathrank-serve shares one
// registry between the server and the stream pipeline) or a private one.
type serveMetrics struct {
	reg *obsv.Registry

	// requests counts every HTTP request by endpoint, including the
	// non-rank endpoints, so a dashboard can see scrape and health traffic
	// next to query traffic.
	requests *obsv.CounterVec
	// latency is the end-to-end request duration of the rank endpoints,
	// labeled by endpoint and the serving snapshot's engine. Requests
	// rejected before a snapshot is pinned (shed, undecodable body) are
	// not observed here — they are visible in rankErrors/shed instead.
	latency *obsv.HistogramVec
	// rankErrors counts failed rank queries by typed api code (per item
	// for batches).
	rankErrors *obsv.CounterVec
	// cacheEvents counts result-cache hits, misses, and singleflight-shared
	// answers across both API versions.
	cacheEvents *obsv.CounterVec
	// shed counts requests rejected by the MaxInFlight load shedder.
	shed obsv.Counter
	// batchQueries is the distribution of queries per /v2/rank batch
	// request (single-query requests are not observed).
	batchQueries obsv.Histogram
	// flushPaths is the distribution of paths per micro-batched NN scoring
	// sweep; empty when batching is disabled.
	flushPaths obsv.Histogram
	// swaps/swapDuration instrument artifact hot swaps (snapshot build +
	// install, excluding the retired snapshot's background drain).
	swaps        obsv.Counter
	swapDuration obsv.Histogram
	// swapRejected counts candidate artifacts the canary gate refused to
	// publish (the live snapshot kept serving).
	swapRejected obsv.Counter
	// reloadErrors counts failed /v1/reload attempts.
	reloadErrors obsv.Counter
	// ingest counts trajectories by outcome: accepted into the pipeline or
	// rejected (no pipeline, invalid body, over limits, backlog).
	ingest *obsv.CounterVec
}

// newServeMetrics registers the server's metric families on reg and wires
// the scrape-time gauges to s.
func newServeMetrics(reg *obsv.Registry, s *Server) *serveMetrics {
	m := &serveMetrics{reg: reg}
	m.requests = reg.Counter("pathrank_http_requests_total",
		"HTTP requests received, by endpoint.", "endpoint")
	m.latency = reg.Histogram("pathrank_request_duration_seconds",
		"End-to-end rank request latency in seconds, by endpoint and serving engine.",
		nil, "endpoint", "engine")
	m.rankErrors = reg.Counter("pathrank_rank_errors_total",
		"Failed rank queries by typed error code (per item for batches).", "code")
	m.cacheEvents = reg.Counter("pathrank_cache_events_total",
		"Result-cache lookups by outcome: hit, miss, or singleflight_shared.", "event")
	m.shed = reg.Counter("pathrank_load_shed_total",
		"Rank requests rejected immediately because MaxInFlight was exceeded.").With()
	m.batchQueries = reg.Histogram("pathrank_batch_queries",
		"Queries per /v2/rank batch request.", obsv.DefSizeBuckets).With()
	m.flushPaths = reg.Histogram("pathrank_score_batch_paths",
		"Paths per micro-batched NN scoring sweep.", obsv.DefSizeBuckets).With()
	m.swaps = reg.Counter("pathrank_swaps_total",
		"Artifact hot swaps installed.").With()
	m.swapDuration = reg.Histogram("pathrank_swap_duration_seconds",
		"Hot-swap latency in seconds: snapshot build through install.", nil).With()
	m.swapRejected = reg.Counter("pathrank_swap_rejected_total",
		"Artifact swaps refused by the canary gate; the previous snapshot kept serving.").With()
	m.reloadErrors = reg.Counter("pathrank_reload_errors_total",
		"Failed artifact reload attempts.").With()
	m.ingest = reg.Counter("pathrank_ingest_trajectories_total",
		"Ingested GPS trajectories by outcome: accepted or rejected.", "status")

	reg.GaugeFunc("pathrank_in_flight_requests",
		"Rank requests currently executing.",
		func() float64 { return float64(s.inFlightGauge.Value()) })
	reg.GaugeFunc("pathrank_cache_entries",
		"Entries in the serving snapshot's result cache.",
		func() float64 { return float64(s.snap.Load().cache.len()) })
	reg.GaugeFunc("pathrank_snapshot_age_seconds",
		"Age of the serving snapshot (resets on every hot swap).",
		func() float64 { return time.Since(s.snap.Load().loaded).Seconds() })
	reg.GaugeFunc("pathrank_model_generation",
		"Lineage generation of the serving artifact.",
		func() float64 { return float64(s.snap.Load().art.Lineage.Generation) })
	reg.GaugeFunc("process_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("go_goroutines",
		"Live goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_memstats_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.Alloc)
		})
	return m
}

// observeLatency records one completed rank request (success or typed
// failure) against its endpoint and the snapshot's engine.
func (m *serveMetrics) observeLatency(endpoint string, snap *snapshot, start time.Time) {
	m.latency.With(endpoint, snap.engine.Kind().String()).Observe(time.Since(start).Seconds())
}
