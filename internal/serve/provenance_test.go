package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"pathrank/internal/api"
)

// fakeProvenance stands in for the live pipeline, keeping this package's
// tests independent of internal/stream.
type fakeProvenance struct {
	info   api.ProvenanceInfo
	proofs map[int64]api.InclusionProof
}

func (f *fakeProvenance) Provenance() api.ProvenanceInfo { return f.info }

func (f *fakeProvenance) ProveTrajectory(seq int64) (api.InclusionProof, error) {
	p, ok := f.proofs[seq]
	if !ok {
		return api.InclusionProof{}, errors.New("no inclusion proof for that trajectory")
	}
	return p, nil
}

func getJSON(t *testing.T, url string, status int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != status {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, status)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
}

func TestProvenanceEndpointWithoutPipeline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var info api.ProvenanceInfo
	getJSON(t, ts.URL+"/v1/provenance", http.StatusOK, &info)
	// The offline test artifact has no provenance roots and no WAL; the
	// endpoint must still answer with the lineage's (empty) commitments.
	if info.DataRoot != "" || info.WAL != nil {
		t.Fatalf("offline artifact provenance: %+v", info)
	}
	getJSON(t, ts.URL+"/v1/provenance?seq=1", http.StatusNotFound, nil)
}

func TestProvenanceEndpointWithPipeline(t *testing.T) {
	src := &fakeProvenance{
		info: api.ProvenanceInfo{
			Generation: 3,
			DataRoot:   "aa11",
			ChainRoot:  "bb22",
			BatchSize:  5,
			WAL: &api.WALStatus{
				Segments: 2, LastIndex: 17, SyncedIndex: 17,
				FsyncPolicy: "batch", Fsyncs: 4, RecoveredRecords: 6, TornBytes: 3,
			},
		},
		proofs: map[int64]api.InclusionProof{
			9: {Seq: 9, Generation: 3, Index: 1, BatchSize: 5, LeafHash: "cc33", DataRoot: "aa11", ChainRoot: "bb22"},
		},
	}
	_, ts := newTestServer(t, Config{Provenance: src})

	var info api.ProvenanceInfo
	getJSON(t, ts.URL+"/v1/provenance", http.StatusOK, &info)
	if info.Generation != 3 || info.DataRoot != "aa11" || info.WAL == nil || info.WAL.LastIndex != 17 {
		t.Fatalf("provenance info: %+v", info)
	}

	var proof api.InclusionProof
	getJSON(t, ts.URL+"/v1/provenance?seq=9", http.StatusOK, &proof)
	if proof.Seq != 9 || proof.DataRoot != "aa11" || proof.BatchSize != 5 {
		t.Fatalf("inclusion proof: %+v", proof)
	}
	getJSON(t, ts.URL+"/v1/provenance?seq=10", http.StatusNotFound, nil)
	getJSON(t, ts.URL+"/v1/provenance?seq=zero", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/provenance?seq=-4", http.StatusBadRequest, nil)

	// The health response carries the WAL block, and /metrics.json exports
	// the live provenance gauge.
	var health struct {
		WAL *api.WALStatus `json:"wal"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	if health.WAL == nil || health.WAL.Segments != 2 || health.WAL.TornBytes != 3 {
		t.Fatalf("healthz wal block: %+v", health.WAL)
	}
	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metrics struct {
		Serve map[string]json.RawMessage `json:"serve"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	prov, ok := metrics.Serve["provenance"]
	if !ok || !strings.Contains(string(prov), "aa11") {
		t.Fatalf("metrics provenance gauge missing or stale: %s", prov)
	}
}
