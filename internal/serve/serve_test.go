package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pathrank/internal/dataset"
	"pathrank/internal/geo"
	"pathrank/internal/node2vec"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/traj"
)

var (
	artOnce sync.Once
	artErr  error
	testArt *pathrank.Artifact
)

// loadedTestArtifact trains a small pipeline once, saves it as a bundle,
// and returns the re-loaded artifact — so every serve test runs against an
// artifact that actually went through the persistence layer, as production
// serving does.
func loadedTestArtifact(t testing.TB) *pathrank.Artifact {
	t.Helper()
	artOnce.Do(func() {
		g, err := roadnet.Generate(roadnet.GenConfig{
			Rows: 9, Cols: 9, SpacingM: 250, JitterFrac: 0.2,
			RemoveFrac: 0.08, ArterialEvery: 4, Motorway: false,
			Origin: geo.Point{Lon: 10, Lat: 57}, Seed: 11,
		})
		if err != nil {
			artErr = err
			return
		}
		drivers := traj.NewPopulation(traj.PopulationConfig{NumDrivers: 5, Seed: 12})
		trips, err := traj.GenerateTrips(g, drivers, traj.TripConfig{TripsPerDriver: 2, MinHops: 4, Seed: 13})
		if err != nil {
			artErr = err
			return
		}
		queries, err := dataset.Generate(g, trips, dataset.Config{
			Strategy: dataset.DTkDI, K: 4, Threshold: 0.8, IncludeTruth: true,
		})
		if err != nil {
			artErr = err
			return
		}
		mcfg := pathrank.Config{EmbeddingDim: 12, Hidden: 10, Variant: pathrank.PRA2, Body: pathrank.GRUBody, Seed: 7}
		model, err := pathrank.New(g.NumVertices(), mcfg)
		if err != nil {
			artErr = err
			return
		}
		emb := node2vec.Embed(g, node2vec.DefaultWalkConfig(), node2vec.DefaultTrainConfig(mcfg.EmbeddingDim))
		if err := model.InitEmbeddings(emb); err != nil {
			artErr = err
			return
		}
		if _, err := model.Train(queries, pathrank.TrainConfig{Epochs: 2, LR: 0.005, ClipNorm: 5, Seed: 1}); err != nil {
			artErr = err
			return
		}
		art := &pathrank.Artifact{
			Graph: g, Embeddings: emb, Model: model,
			Candidates: dataset.Config{Strategy: dataset.DTkDI, K: 4, Threshold: 0.8},
		}
		var buf bytes.Buffer
		if err := pathrank.SaveArtifact(&buf, art); err != nil {
			artErr = err
			return
		}
		testArt, artErr = pathrank.LoadArtifact(bytes.NewReader(buf.Bytes()))
	})
	if artErr != nil {
		t.Fatalf("build test artifact: %v", artErr)
	}
	return testArt
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(loadedTestArtifact(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postRank(t testing.TB, url string, req RankRequest) (*http.Response, RankResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/rank", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr RankResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, rr
}

// TestServeRankMatchesInProcess is the acceptance test: rankings served
// over HTTP from a loaded artifact are bit-identical to in-process
// Ranker.Query results (encoding/json float64 round-trips exactly).
func TestServeRankMatchesInProcess(t *testing.T) {
	art := loadedTestArtifact(t)
	_, ts := newTestServer(t, Config{})
	ranker := art.NewRanker()

	n := art.Graph.NumVertices()
	pairs := [][2]int64{{0, int64(n - 1)}, {3, int64(n / 2)}, {int64(n - 1), 5}}
	for _, pair := range pairs {
		src, dst := pair[0], pair[1]
		want, err := ranker.Query(roadnet.VertexID(src), roadnet.VertexID(dst))
		if err != nil {
			t.Fatalf("in-process query %d->%d: %v", src, dst, err)
		}
		resp, rr := postRank(t, ts.URL, RankRequest{Src: src, Dst: dst})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d->%d: status %d", src, dst, resp.StatusCode)
		}
		if len(rr.Paths) != len(want) {
			t.Fatalf("query %d->%d: %d paths, want %d", src, dst, len(rr.Paths), len(want))
		}
		for i, p := range rr.Paths {
			if p.Score != want[i].Score {
				t.Fatalf("query %d->%d rank %d: score %v != in-process %v",
					src, dst, i+1, p.Score, want[i].Score)
			}
			if len(p.Vertices) != len(want[i].Path.Vertices) {
				t.Fatalf("query %d->%d rank %d: vertex count mismatch", src, dst, i+1)
			}
			for j, v := range p.Vertices {
				if roadnet.VertexID(v) != want[i].Path.Vertices[j] {
					t.Fatalf("query %d->%d rank %d: vertex %d mismatch", src, dst, i+1, j)
				}
			}
			if p.Rank != i+1 {
				t.Fatalf("rank field %d, want %d", p.Rank, i+1)
			}
		}
	}
}

// TestServeRankBatchedMatchesInProcess proves micro-batching changes
// nothing about the results, even under concurrency.
func TestServeRankBatchedMatchesInProcess(t *testing.T) {
	art := loadedTestArtifact(t)
	_, ts := newTestServer(t, Config{
		BatchWindow:   2 * time.Millisecond,
		BatchMaxPaths: 64,
		CacheSize:     -1, // force every request through scoring
	})
	ranker := art.NewRanker()
	n := art.Graph.NumVertices()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := int64(w % n)
			dst := int64(n - 1 - w%n)
			if src == dst {
				dst = (dst + 1) % int64(n)
			}
			want, err := ranker.Query(roadnet.VertexID(src), roadnet.VertexID(dst))
			if err != nil {
				errs <- err
				return
			}
			resp, rr := postRank(t, ts.URL, RankRequest{Src: src, Dst: dst})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			for i, p := range rr.Paths {
				if p.Score != want[i].Score {
					errs <- fmt.Errorf("batched query %d->%d rank %d: %v != %v",
						src, dst, i+1, p.Score, want[i].Score)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServeCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := RankRequest{Src: 1, Dst: int64(s.snap.Load().art.Graph.NumVertices() - 2)}

	_, first := postRank(t, ts.URL, req)
	if first.Cached {
		t.Fatal("first request should not be cached")
	}
	_, second := postRank(t, ts.URL, req)
	if !second.Cached {
		t.Fatal("second identical request should be served from cache")
	}
	if len(first.Paths) != len(second.Paths) {
		t.Fatal("cached response differs")
	}
	for i := range first.Paths {
		if first.Paths[i].Score != second.Paths[i].Score {
			t.Fatal("cached score differs")
		}
	}
	if s.cacheHits.Value() == 0 {
		t.Fatal("cache_hits metric not incremented")
	}
}

func TestServeRankValidation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	n := int64(s.snap.Load().art.Graph.NumVertices())

	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", "{", http.StatusBadRequest},
		{"unknown field", `{"src":0,"dst":1,"nope":3}`, http.StatusBadRequest},
		{"src out of range", fmt.Sprintf(`{"src":%d,"dst":1}`, n), http.StatusBadRequest},
		{"negative dst", `{"src":0,"dst":-4}`, http.StatusBadRequest},
		{"k too large", `{"src":0,"dst":1,"k":1000}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/rank", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/rank")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/rank: status %d, want 405", resp.StatusCode)
	}

	// Oversized body: >1 MiB of JSON is refused with 413, not 400.
	huge := `{"src":0,"dst":1,` + strings.Repeat(" ", 1<<20) + `"k":1}`
	resp, err = http.Post(ts.URL+"/v1/rank", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// fakeIngestor records trajectories and can simulate a full queue.
type fakeIngestor struct {
	mu   sync.Mutex
	got  [][]traj.GPSRecord
	fail error
}

func (f *fakeIngestor) IngestGPS(records []traj.GPSRecord) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		return f.fail
	}
	f.got = append(f.got, records)
	return nil
}

func TestServeIngestEndpoint(t *testing.T) {
	ing := &fakeIngestor{}
	s, err := New(loadedTestArtifact(t), Config{Ingest: ing})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	body := `{"records":[{"lon":10,"lat":57,"t":0},{"lon":10.001,"lat":57,"t":5}]}`
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ack IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || ack.Queued != 2 {
		t.Fatalf("ingest: status %d queued %d, want 202/2", resp.StatusCode, ack.Queued)
	}
	ing.mu.Lock()
	if len(ing.got) != 1 || len(ing.got[0]) != 2 || ing.got[0][1].TimeOffset != 5 {
		t.Fatalf("ingestor received %v", ing.got)
	}
	ing.mu.Unlock()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed", "{", http.StatusBadRequest},
		{"empty trajectory", `{"records":[]}`, http.StatusBadRequest},
		{"unknown field", `{"records":[],"nope":1}`, http.StatusBadRequest},
		{"oversized", `{"records":[` + strings.Repeat(" ", maxIngestBody) + `]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Per-trajectory record cap: a server with a small cap rejects long
	// traces with 400 instead of parking megabytes behind a 202.
	sc, err := New(loadedTestArtifact(t), Config{Ingest: ing, MaxIngestRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	tsc := httptest.NewServer(sc.Handler())
	t.Cleanup(func() { tsc.Close(); sc.Close() })
	long := `{"records":[{"lon":10,"lat":57,"t":0},{"lon":10,"lat":57,"t":1},{"lon":10,"lat":57,"t":2},{"lon":10,"lat":57,"t":3}]}`
	resp, err = http.Post(tsc.URL+"/v1/ingest", "application/json", strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("over-cap trajectory: status %d, want 400", resp.StatusCode)
	}

	// Backpressure: an ingestor error surfaces as 503 with Retry-After.
	ing.mu.Lock()
	ing.fail = fmt.Errorf("stream: ingest queue full")
	ing.mu.Unlock()
	resp, err = http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("full queue: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("full queue: missing Retry-After header")
	}

	// No ingestor configured → 503 on a server without the live loop.
	s2, err := New(loadedTestArtifact(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	resp, err = http.Post(ts2.URL+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("ingest disabled: status %d, want 503", resp.StatusCode)
	}
}

// TestServeNoPath serves a disconnected two-island graph and expects 404.
func TestServeNoPath(t *testing.T) {
	b := roadnet.NewBuilder(4, 4)
	v0 := b.AddVertex(geo.Point{Lon: 10, Lat: 57})
	v1 := b.AddVertex(geo.Point{Lon: 10.01, Lat: 57})
	v2 := b.AddVertex(geo.Point{Lon: 10.02, Lat: 57})
	v3 := b.AddVertex(geo.Point{Lon: 10.03, Lat: 57})
	b.AddBidirectional(v0, v1, roadnet.Residential)
	b.AddBidirectional(v2, v3, roadnet.Residential)
	g := b.Build()

	model, err := pathrank.New(g.NumVertices(), pathrank.Config{
		EmbeddingDim: 4, Hidden: 4, Variant: pathrank.PRA2, Body: pathrank.GRUBody, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(&pathrank.Artifact{Graph: g, Model: model}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := postRank(t, ts.URL, RankRequest{Src: int64(v0), Dst: int64(v2)})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disconnected query: status %d, want 404", resp.StatusCode)
	}
}

func TestServeHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz status = %v", health["status"])
	}
	if int(health["vertices"].(float64)) != s.snap.Load().art.Graph.NumVertices() {
		t.Fatal("healthz vertex count mismatch")
	}

	postRank(t, ts.URL, RankRequest{Src: 0, Dst: 8})
	resp, err = http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Serve    map[string]json.Number `json:"serve"`
		Memstats map[string]any         `json:"memstats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	resp.Body.Close()
	if v, _ := metrics.Serve["requests_total"].Int64(); v < 2 {
		t.Fatalf("requests_total = %v, want >= 2", v)
	}
	if _, ok := metrics.Serve["cache_misses"]; !ok {
		t.Fatal("metrics missing cache_misses")
	}
	if len(metrics.Memstats) == 0 {
		t.Fatal("metrics missing memstats")
	}
}

// TestSingleflightCollapses drives the flight group directly: concurrent
// callers with one key must share a single computation.
func TestSingleflightCollapses(t *testing.T) {
	g := newFlightGroup()
	key := queryKey{src: 1, dst: 2, k: 3}

	var calls int
	gate := make(chan struct{})
	started := make(chan struct{})

	const waiters = 4
	var wg sync.WaitGroup
	sharedCount := make(chan bool, waiters+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, shared := g.do(context.Background(), key, func() ([]pathrank.Ranked, error) {
			calls++
			close(started)
			<-gate
			return []pathrank.Ranked{{Score: 0.5}}, nil
		})
		sharedCount <- shared
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, err, shared := g.do(context.Background(), key, func() ([]pathrank.Ranked, error) {
				t.Error("duplicate in-flight computation")
				return nil, nil
			})
			if err != nil || len(val) != 1 || val[0].Score != 0.5 {
				t.Errorf("shared result corrupted: %v %v", val, err)
			}
			sharedCount <- shared
		}()
	}
	// Give the waiters a moment to park on the in-flight call, then open
	// the gate.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	close(sharedCount)

	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	nShared := 0
	for s := range sharedCount {
		if s {
			nShared++
		}
	}
	if nShared != waiters {
		t.Fatalf("%d callers shared, want %d", nShared, waiters)
	}
}

// TestSingleflightSurvivesPanic: a panicking computation must release its
// waiters with an error and unregister the key — not poison it forever.
func TestSingleflightSurvivesPanic(t *testing.T) {
	g := newFlightGroup()
	key := queryKey{src: 1, dst: 2}

	started := make(chan struct{})
	release := make(chan struct{})
	waiterDone := make(chan error, 1)

	go func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic was swallowed")
			}
		}()
		_, _, _ = g.do(context.Background(), key, func() ([]pathrank.Ranked, error) {
			close(started)
			<-release
			panic("query invariant broken")
		})
	}()
	<-started
	go func() {
		_, err, _ := g.do(context.Background(), key, func() ([]pathrank.Ranked, error) {
			return nil, nil
		})
		waiterDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park on the call
	close(release)

	select {
	case err := <-waiterDone:
		if err == nil {
			t.Fatal("waiter of a panicked call should see an error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter still blocked: key poisoned by panic")
	}

	// The key must be usable again.
	val, err, _ := g.do(context.Background(), key, func() ([]pathrank.Ranked, error) {
		return []pathrank.Ranked{{Score: 0.9}}, nil
	})
	if err != nil || len(val) != 1 {
		t.Fatalf("key not released after panic: %v %v", val, err)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	k1 := queryKey{src: 1, dst: 2}
	k2 := queryKey{src: 3, dst: 4}
	k3 := queryKey{src: 5, dst: 6}

	c.add(k1, []pathrank.Ranked{{Score: 1}})
	c.add(k2, []pathrank.Ranked{{Score: 2}})
	if _, ok := c.get(k1); !ok {
		t.Fatal("k1 should be cached")
	}
	// k1 is now most recent; adding k3 must evict k2.
	c.add(k3, []pathrank.Ranked{{Score: 3}})
	if _, ok := c.get(k2); ok {
		t.Fatal("k2 should have been evicted")
	}
	if _, ok := c.get(k1); !ok {
		t.Fatal("k1 should survive eviction")
	}
	if _, ok := c.get(k3); !ok {
		t.Fatal("k3 should be cached")
	}
	if c.len() != 2 {
		t.Fatalf("cache len %d, want 2", c.len())
	}

	// Disabled cache is inert.
	var nc *lruCache
	nc.add(k1, nil)
	if _, ok := nc.get(k1); ok {
		t.Fatal("nil cache returned a hit")
	}
}

// TestBatcherScoresMatchDirect checks the micro-batcher returns exactly
// Model.ScoreBatch results under concurrent submission.
func TestBatcherScoresMatchDirect(t *testing.T) {
	art := loadedTestArtifact(t)
	ranker := art.NewRanker()
	n := art.Graph.NumVertices()

	b := newBatcher(art.Model.ScoreBatch, time.Millisecond, 128)

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := roadnet.VertexID((w * 7) % n)
			dst := roadnet.VertexID(n - 1 - (w*5)%n)
			if src == dst {
				dst = (dst + 1) % roadnet.VertexID(n)
			}
			cands, err := ranker.CandidatePaths(src, dst)
			if err != nil {
				t.Errorf("candidates %d->%d: %v", src, dst, err)
				return
			}
			got := b.score(cands)
			want := art.Model.ScoreBatch(cands)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("batched score %d differs: %v != %v", i, got[i], want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// After stop, score falls back to direct scoring instead of hanging.
	b.stop()
	cands, err := ranker.CandidatePaths(0, roadnet.VertexID(n-1))
	if err != nil {
		t.Fatal(err)
	}
	got := b.score(cands)
	want := art.Model.ScoreBatch(cands)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-stop score %d differs", i)
		}
	}
}

// TestDisableFusedScoringBitIdentical pins the Config escape hatch: a
// snapshot scoring through the per-path reference path must return exactly
// the scores of the default fused path.
func TestDisableFusedScoringBitIdentical(t *testing.T) {
	art := loadedTestArtifact(t)
	ranker := art.NewRanker()
	cands, err := ranker.CandidatePaths(0, roadnet.VertexID(art.Graph.NumVertices()-1))
	if err != nil {
		t.Fatal(err)
	}
	fused, err := newSnapshot(art, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	perPath, err := newSnapshot(art, Config{DisableFusedScoring: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, want := perPath.score(cands), fused.score(cands)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("score %d: per-path %v != fused %v", i, got[i], want[i])
		}
	}
}

func TestGracefulShutdown(t *testing.T) {
	s, err := New(loadedTestArtifact(t), Config{
		Addr:        "127.0.0.1:0",
		BatchWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan net.Addr, 1)
	s.cfg.OnListen = func(a net.Addr) { addrCh <- a }

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx) }()

	addr := <-addrCh
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatalf("healthz against Run server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down within 5s")
	}

	// The listener must actually be closed.
	if _, err := net.DialTimeout("tcp", addr.String(), 100*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
