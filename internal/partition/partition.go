// Package partition implements prep-time geometric graph partitioning for
// the sharded serving tier: a road network is split into P balanced parts
// by recursive KD (coordinate-median) bisection, each part is extracted as
// an induced subgraph that keeps the full vertex table under global IDs,
// and the boundary vertices — the exact separator between shards — get
// precomputed full-graph distance tables under both metrics.
//
// The separator property is what makes the router's cross-shard stitching
// exact: every path between vertices of different shards crosses the
// boundary set, so full-graph distances decompose as
//
//	d(s,t) = min over boundary b of d(s,b) + d(b,t)
//
// with the inner d(s,b) computable from one shard's subgraph plus the
// precomputed boundary-to-boundary table (see internal/router).
package partition

import (
	"fmt"
	"sort"

	"pathrank/internal/roadnet"
)

// Result is a P-way vertex partition of one road network.
type Result struct {
	// Parts is the partition count.
	Parts int
	// Owner maps every vertex to its owning shard in [0, Parts).
	Owner []int32
	// Boundary lists each shard's boundary vertices (owned vertices with
	// at least one incident cut edge, in either direction), ascending.
	// The per-shard lists are disjoint; their union is the separator.
	Boundary [][]roadnet.VertexID
	// CutEdges holds the full edge records (global IDs, explicit lengths
	// and times) of every edge whose endpoints are owned by different
	// shards. Cut edges belong to no shard subgraph; the router owns them.
	CutEdges []roadnet.Edge
}

// Split partitions g's vertices into parts balanced parts by recursive
// geometric bisection: at each level the vertex set is sorted along its
// wider coordinate axis (ties broken by vertex ID, so the partition is
// deterministic) and cut proportionally to the part counts on each side.
// Every leaf receives within one vertex of the perfectly proportional
// share, so shard sizes lie in [floor(V/P), ceil(V/P)] up to rounding
// accumulated across levels — Imbalance reports the achieved ratio.
func Split(g *roadnet.Graph, parts int) (*Result, error) {
	n := g.NumVertices()
	if parts < 2 {
		return nil, fmt.Errorf("partition: need at least 2 parts, got %d", parts)
	}
	if parts > n {
		return nil, fmt.Errorf("partition: %d parts for %d vertices", parts, n)
	}
	owner := make([]int32, n)
	vs := make([]roadnet.VertexID, n)
	for i := range vs {
		vs[i] = roadnet.VertexID(i)
	}
	var bisect func(vs []roadnet.VertexID, p int, base int32)
	bisect = func(vs []roadnet.VertexID, p int, base int32) {
		if p == 1 {
			for _, v := range vs {
				owner[v] = base
			}
			return
		}
		minLon, maxLon := g.Vertex(vs[0]).Point.Lon, g.Vertex(vs[0]).Point.Lon
		minLat, maxLat := g.Vertex(vs[0]).Point.Lat, g.Vertex(vs[0]).Point.Lat
		for _, v := range vs[1:] {
			pt := g.Vertex(v).Point
			if pt.Lon < minLon {
				minLon = pt.Lon
			}
			if pt.Lon > maxLon {
				maxLon = pt.Lon
			}
			if pt.Lat < minLat {
				minLat = pt.Lat
			}
			if pt.Lat > maxLat {
				maxLat = pt.Lat
			}
		}
		byLon := maxLon-minLon >= maxLat-minLat
		sort.Slice(vs, func(i, j int) bool {
			var ci, cj float64
			if byLon {
				ci, cj = g.Vertex(vs[i]).Point.Lon, g.Vertex(vs[j]).Point.Lon
			} else {
				ci, cj = g.Vertex(vs[i]).Point.Lat, g.Vertex(vs[j]).Point.Lat
			}
			if ci != cj {
				return ci < cj
			}
			return vs[i] < vs[j]
		})
		pl := p / 2
		k := len(vs) * pl / p
		bisect(vs[:k], pl, base)
		bisect(vs[k:], p-pl, base+int32(pl))
	}
	bisect(vs, parts, 0)

	res := &Result{
		Parts:    parts,
		Owner:    owner,
		Boundary: make([][]roadnet.VertexID, parts),
	}
	isBoundary := make([]bool, n)
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(roadnet.EdgeID(i))
		if owner[e.From] != owner[e.To] {
			res.CutEdges = append(res.CutEdges, e)
			isBoundary[e.From] = true
			isBoundary[e.To] = true
		}
	}
	for v := 0; v < n; v++ {
		if isBoundary[v] {
			s := owner[v]
			res.Boundary[s] = append(res.Boundary[s], roadnet.VertexID(v))
		}
	}
	return res, nil
}

// Imbalance returns max shard size divided by the perfect share V/P.
func (r *Result) Imbalance() float64 {
	counts := make([]int, r.Parts)
	for _, s := range r.Owner {
		counts[s]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return float64(max) * float64(r.Parts) / float64(len(r.Owner))
}

// BoundaryVertices returns the global separator: every shard's boundary
// vertices merged, ascending. The per-shard lists are disjoint (each
// boundary vertex has exactly one owner), so this is a sorted union.
func (r *Result) BoundaryVertices() []roadnet.VertexID {
	var all []roadnet.VertexID
	for _, b := range r.Boundary {
		all = append(all, b...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// ExtractShard builds shard s's induced subgraph: the FULL vertex table
// (global IDs — the model's vertex vocabulary must not shift) and exactly
// the edges with both endpoints owned by s, renumbered densely in global
// edge order. The returned mapping translates local edge IDs back to
// global ones; lengths and times are copied bit-for-bit, so any path
// metric computed in the shard equals the full-graph value.
func ExtractShard(g *roadnet.Graph, owner []int32, s int32) (*roadnet.Graph, []roadnet.EdgeID) {
	full := g.RawData()
	var edges []roadnet.Edge
	var toGlobal []roadnet.EdgeID
	for _, e := range full.Edges {
		if owner[e.From] == s && owner[e.To] == s {
			le := e
			le.ID = roadnet.EdgeID(len(edges))
			edges = append(edges, le)
			toGlobal = append(toGlobal, e.ID)
		}
	}
	return roadnet.NewGraphFromData(full.Vertices, edges), toGlobal
}
