package partition

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"pathrank/internal/dataset"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// ShardMap is the router's half of a shard bundle: everything it needs to
// route, stitch, and rank WITHOUT holding any shard's graph. The model
// travels with the map (its vocabulary is the full vertex table, so the
// router can score candidate paths expressed in global vertex IDs), as do
// the cut edges (owned by no shard) and the boundary distance tables that
// make cross-shard stitching exact.
type ShardMap struct {
	Parts       int
	NumVertices int
	NumEdges    int
	// Owner maps every global vertex to its shard.
	Owner []int32
	// Boundary is each shard's boundary vertex list, ascending global IDs
	// — the exact order the shard's /shard/boundary response is aligned to.
	Boundary [][]roadnet.VertexID
	// CutEdges are the full records of every cross-shard edge (global IDs,
	// explicit lengths and times).
	CutEdges []roadnet.Edge
	// DLen and DTime are |B|×|B| row-major full-graph shortest-path cost
	// tables over the global boundary list (GlobalBoundary's order), under
	// the length and time metrics respectively; +Inf marks unreachable.
	DLen  []float64
	DTime []float64
	// TotalLen and TotalTime sum every edge's weight under each metric.
	// They bound the cost of any loopless path, so the router can certify
	// a corridor enumeration as complete once its bound exceeds them.
	TotalLen  float64
	TotalTime float64
	// Candidates is the bundle's candidate-generation configuration (the
	// same one every shard artifact carries).
	Candidates dataset.Config
	// ModelConfig and ModelParams reconstruct the ranking model
	// (pathrank.New + Model.Load); Fingerprint is its hex SHA-256, equal to
	// every shard's serving fingerprint.
	ModelConfig pathrank.Config
	ModelParams []byte
	Fingerprint string
}

// GlobalBoundary returns the separator in table order: every shard's
// boundary list merged ascending. Deterministic, so the router and the
// bundle builder always agree on table indices.
func (m *ShardMap) GlobalBoundary() []roadnet.VertexID {
	var all []roadnet.VertexID
	for _, b := range m.Boundary {
		all = append(all, b...)
	}
	// Per-shard lists are sorted and disjoint; a k-way merge would do, but
	// |B| is small relative to V — reuse the simple sort.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j] < all[j-1]; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	return all
}

// Model reconstructs the ranking model carried by the map.
func (m *ShardMap) Model() (*pathrank.Model, error) {
	model, err := pathrank.New(m.NumVertices, m.ModelConfig)
	if err != nil {
		return nil, fmt.Errorf("partition: shard map model config: %w", err)
	}
	if err := model.Load(bytes.NewReader(m.ModelParams)); err != nil {
		return nil, fmt.Errorf("partition: shard map model weights: %w", err)
	}
	return model, nil
}

// Shard-map file format: the artifact header layout (magic, version,
// SHA-256 of the gob payload, payload length) with its own magic.
var shardMapMagic = [8]byte{'P', 'R', 'S', 'H', 'R', 'D', 'M', 'P'}

const shardMapVersion = 1

// maxShardMapPayload bounds the payload a loader will accept.
const maxShardMapPayload = 1 << 32

// SaveShardMap writes the map as a checksummed bundle.
func SaveShardMap(w io.Writer, m *ShardMap) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(m); err != nil {
		return fmt.Errorf("partition: encode shard map: %w", err)
	}
	var header [52]byte
	copy(header[0:8], shardMapMagic[:])
	binary.BigEndian.PutUint32(header[8:12], shardMapVersion)
	sum := sha256.Sum256(payload.Bytes())
	copy(header[12:44], sum[:])
	binary.BigEndian.PutUint64(header[44:52], uint64(payload.Len()))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("partition: write shard map header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("partition: write shard map payload: %w", err)
	}
	return nil
}

// LoadShardMap reads a map written by SaveShardMap, verifying magic,
// version, checksum, and internal consistency.
func LoadShardMap(r io.Reader) (*ShardMap, error) {
	var header [52]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("partition: shard map: short header: %w", err)
	}
	if !bytes.Equal(header[0:8], shardMapMagic[:]) {
		return nil, fmt.Errorf("partition: not a shard map file (magic %q)", header[0:8])
	}
	if v := binary.BigEndian.Uint32(header[8:12]); v != shardMapVersion {
		return nil, fmt.Errorf("partition: shard map version %d, this build reads %d", v, shardMapVersion)
	}
	n := binary.BigEndian.Uint64(header[44:52])
	if n > maxShardMapPayload {
		return nil, fmt.Errorf("partition: shard map payload length %d exceeds limit", n)
	}
	var payload bytes.Buffer
	if _, err := io.CopyN(&payload, r, int64(n)); err != nil {
		return nil, fmt.Errorf("partition: shard map truncated: %w", err)
	}
	if sum := sha256.Sum256(payload.Bytes()); !bytes.Equal(sum[:], header[12:44]) {
		return nil, fmt.Errorf("partition: shard map checksum mismatch")
	}
	var m ShardMap
	if err := gob.NewDecoder(&payload).Decode(&m); err != nil {
		return nil, fmt.Errorf("partition: decode shard map: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

func (m *ShardMap) validate() error {
	if m.Parts < 2 || len(m.Boundary) != m.Parts {
		return fmt.Errorf("partition: shard map has %d parts, %d boundary lists", m.Parts, len(m.Boundary))
	}
	if len(m.Owner) != m.NumVertices {
		return fmt.Errorf("partition: shard map owner covers %d of %d vertices", len(m.Owner), m.NumVertices)
	}
	for v, s := range m.Owner {
		if s < 0 || int(s) >= m.Parts {
			return fmt.Errorf("partition: vertex %d owned by shard %d of %d", v, s, m.Parts)
		}
	}
	nb := 0
	for s, list := range m.Boundary {
		for i, b := range list {
			if b < 0 || int(b) >= m.NumVertices {
				return fmt.Errorf("partition: boundary vertex %d out of range", b)
			}
			if m.Owner[b] != int32(s) {
				return fmt.Errorf("partition: boundary vertex %d listed under shard %d, owned by %d", b, s, m.Owner[b])
			}
			if i > 0 && list[i-1] >= b {
				return fmt.Errorf("partition: shard %d boundary list not ascending", s)
			}
		}
		nb += len(list)
	}
	if len(m.DLen) != nb*nb || len(m.DTime) != nb*nb {
		return fmt.Errorf("partition: boundary tables sized %d/%d for %d boundary vertices",
			len(m.DLen), len(m.DTime), nb)
	}
	for _, e := range m.CutEdges {
		if e.From < 0 || int(e.From) >= m.NumVertices || e.To < 0 || int(e.To) >= m.NumVertices {
			return fmt.Errorf("partition: cut edge %d endpoints out of range", e.ID)
		}
		if m.Owner[e.From] == m.Owner[e.To] {
			return fmt.Errorf("partition: cut edge %d is not cross-shard", e.ID)
		}
	}
	return nil
}

// distanceTable fills the |B|×|B| row-major table of exact costs.
func distanceTable(eng spath.Engine, B []roadnet.VertexID) []float64 {
	nb := len(B)
	flat := make([]float64, nb*nb)
	rows := make([][]float64, nb)
	for i := range rows {
		rows[i] = flat[i*nb : (i+1)*nb]
	}
	eng.ManyToMany(B, B, math.Inf(1), rows)
	return flat
}

// Bundle file names within a bundle directory.
const (
	// ManifestName is the bundle's JSON descriptor.
	ManifestName = "bundle.json"
	// ShardMapName is the router's shard map.
	ShardMapName = "shardmap.bin"
)

// ShardArtifactName returns the file name of shard i's artifact.
func ShardArtifactName(i int) string { return fmt.Sprintf("shard-%03d.prar", i) }

// ShardManifest describes one shard in a bundle manifest.
type ShardManifest struct {
	Index         int    `json:"index"`
	Artifact      string `json:"artifact"`
	OwnedVertices int    `json:"owned_vertices"`
	Edges         int    `json:"edges"`
	Boundary      int    `json:"boundary_vertices"`
}

// Manifest is the bundle descriptor written as bundle.json.
type Manifest struct {
	Parts            int             `json:"parts"`
	Vertices         int             `json:"vertices"`
	Edges            int             `json:"edges"`
	CutEdges         int             `json:"cut_edges"`
	BoundaryVertices int             `json:"boundary_vertices"`
	Imbalance        float64         `json:"imbalance"`
	Fingerprint      string          `json:"fingerprint"`
	ShardMap         string          `json:"shard_map"`
	Shards           []ShardManifest `json:"shards"`
}

// BuildBundle partitions art's road network into parts shards and writes a
// complete serving bundle into dir: one mappable (format v3) artifact per
// shard, the router's shard map, and a JSON manifest. Each shard artifact
// carries the full model, the bundle's candidate configuration, its
// induced subgraph, a freshly built CH over that subgraph, and its shard
// identity; the shard map carries the model again plus the boundary
// tables computed on the FULL graph (using art's own prepared engine when
// it has one). logf, when non-nil, receives progress lines.
func BuildBundle(art *pathrank.Artifact, dir string, parts int, logf func(format string, args ...any)) (*Manifest, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	g := art.Graph
	res, err := Split(g, parts)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	fp, err := art.Model.FingerprintHex()
	if err != nil {
		return nil, fmt.Errorf("partition: fingerprint model: %w", err)
	}
	man := &Manifest{
		Parts:            parts,
		Vertices:         g.NumVertices(),
		Edges:            g.NumEdges(),
		CutEdges:         len(res.CutEdges),
		BoundaryVertices: len(res.BoundaryVertices()),
		Imbalance:        res.Imbalance(),
		Fingerprint:      fp,
		ShardMap:         ShardMapName,
	}
	logf("partitioned %d vertices into %d shards: %d cut edges, %d boundary vertices, imbalance %.3f",
		man.Vertices, parts, man.CutEdges, man.BoundaryVertices, man.Imbalance)

	owned := make([]int, parts)
	for _, s := range res.Owner {
		owned[s]++
	}
	for i := 0; i < parts; i++ {
		sg, toGlobal := ExtractShard(g, res.Owner, int32(i))
		prep := spath.BuildPrep(sg, spath.PrepConfig{SkipALT: true})
		sa := &pathrank.Artifact{
			Graph:      sg,
			Model:      art.Model,
			Candidates: art.Candidates,
			Prep:       prep,
			Lineage:    art.Lineage,
			Shard: &pathrank.ShardInfo{
				Index:      i,
				Parts:      parts,
				Boundary:   res.Boundary[i],
				EdgeGlobal: toGlobal,
			},
		}
		name := ShardArtifactName(i)
		if err := pathrank.SaveArtifactV3File(filepath.Join(dir, name), sa); err != nil {
			return nil, err
		}
		man.Shards = append(man.Shards, ShardManifest{
			Index:         i,
			Artifact:      name,
			OwnedVertices: owned[i],
			Edges:         sg.NumEdges(),
			Boundary:      len(res.Boundary[i]),
		})
		logf("shard %d: %d owned vertices, %d edges, %d boundary vertices -> %s",
			i, owned[i], sg.NumEdges(), len(res.Boundary[i]), name)
	}

	B := res.BoundaryVertices()
	var lengthEng spath.Engine
	if art.Prep != nil {
		lengthEng = art.Prep.BestEngine(g)
	}
	if lengthEng == nil {
		lengthEng = spath.NewDijkstraEngine(g, spath.ByLength)
	}
	logf("computing %dx%d boundary tables (length via %s, time via dijkstra)", len(B), len(B), lengthEng.Kind())
	var params bytes.Buffer
	if err := art.Model.Save(&params); err != nil {
		return nil, fmt.Errorf("partition: serialize model: %w", err)
	}
	var totalLen, totalTime float64
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(roadnet.EdgeID(i))
		totalLen += e.Length
		totalTime += e.Time
	}
	m := &ShardMap{
		Parts:       parts,
		NumVertices: g.NumVertices(),
		NumEdges:    g.NumEdges(),
		Owner:       res.Owner,
		Boundary:    res.Boundary,
		CutEdges:    res.CutEdges,
		DLen:        distanceTable(lengthEng, B),
		DTime:       distanceTable(spath.NewDijkstraEngine(g, spath.ByTime), B),
		TotalLen:    totalLen,
		TotalTime:   totalTime,
		Candidates:  art.Candidates,
		ModelConfig: art.Model.Config(),
		ModelParams: params.Bytes(),
		Fingerprint: fp,
	}
	f, err := os.Create(filepath.Join(dir, ShardMapName))
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := SaveShardMap(bw, m); err != nil {
		f.Close()
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return nil, fmt.Errorf("partition: flush shard map: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}

	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), append(mb, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	return man, nil
}

// LoadManifest reads a bundle's JSON descriptor.
func LoadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("partition: parse %s: %w", ManifestName, err)
	}
	return &m, nil
}

// LoadShardMapFile reads the shard map of the bundle in dir.
func LoadShardMapFile(dir string) (*ShardMap, error) {
	f, err := os.Open(filepath.Join(dir, ShardMapName))
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	defer f.Close()
	return LoadShardMap(bufio.NewReader(f))
}
