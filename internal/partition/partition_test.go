package partition

import (
	"math"
	"testing"

	"pathrank/internal/geo"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// testGraph generates a jittered random grid. Continuous jittered
// coordinates give continuous edge weights, so shortest paths are unique
// with probability one — the property tests can demand exact answers.
func testGraph(t testing.TB, rows, cols int, seed int64) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: rows, Cols: cols, SpacingM: 220, JitterFrac: 0.3,
		RemoveFrac: 0.07, ArterialEvery: 4, Motorway: true,
		Origin: geo.Point{Lon: 10, Lat: 57}, Seed: seed,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return g
}

// TestSplitOwnsEveryVertexExactlyOnce checks the partition's basic
// contract over random graphs and part counts: every vertex has exactly
// one owner in range, no shard is empty, and shard sizes stay within the
// documented balance bound.
func TestSplitOwnsEveryVertexExactlyOnce(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		for _, parts := range []int{2, 3, 4, 5, 8} {
			g := testGraph(t, 8, 9, seed)
			res, err := Split(g, parts)
			if err != nil {
				t.Fatalf("seed %d parts %d: %v", seed, parts, err)
			}
			if len(res.Owner) != g.NumVertices() {
				t.Fatalf("seed %d parts %d: owner table has %d entries for %d vertices",
					seed, parts, len(res.Owner), g.NumVertices())
			}
			counts := make([]int, parts)
			for v, s := range res.Owner {
				if s < 0 || int(s) >= parts {
					t.Fatalf("seed %d parts %d: vertex %d owned by out-of-range shard %d", seed, parts, v, s)
				}
				counts[s]++
			}
			// Proportional cuts hand each leaf its share up to one vertex of
			// rounding per bisection level.
			levels := int(math.Ceil(math.Log2(float64(parts))))
			perfect := g.NumVertices() / parts
			for s, c := range counts {
				if c == 0 {
					t.Fatalf("seed %d parts %d: shard %d owns no vertices", seed, parts, s)
				}
				if c < perfect-levels-1 || c > perfect+levels+1 {
					t.Errorf("seed %d parts %d: shard %d owns %d vertices, want within %d of %d",
						seed, parts, s, c, levels+1, perfect)
				}
			}
			if im := res.Imbalance(); im > 1.2 {
				t.Errorf("seed %d parts %d: imbalance %.3f exceeds 1.2", seed, parts, im)
			}
		}
	}
}

// TestBoundarySetComplete checks the separator invariants: every cut
// edge's endpoints are boundary vertices of their owners, every boundary
// vertex has an incident cut edge, the per-shard lists are ascending and
// disjoint, and no intra-shard edge is listed as cut.
func TestBoundarySetComplete(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		for _, parts := range []int{2, 3, 4} {
			g := testGraph(t, 8, 9, seed)
			res, err := Split(g, parts)
			if err != nil {
				t.Fatal(err)
			}
			inBoundary := make(map[roadnet.VertexID]int32)
			for s, list := range res.Boundary {
				for i, v := range list {
					if i > 0 && list[i-1] >= v {
						t.Fatalf("shard %d boundary not strictly ascending at %d", s, i)
					}
					if res.Owner[v] != int32(s) {
						t.Fatalf("boundary vertex %d listed under shard %d but owned by %d", v, s, res.Owner[v])
					}
					if prev, dup := inBoundary[v]; dup {
						t.Fatalf("vertex %d in boundary of shards %d and %d", v, prev, s)
					}
					inBoundary[v] = int32(s)
				}
			}
			cutByID := make(map[roadnet.EdgeID]bool)
			for _, e := range res.CutEdges {
				if res.Owner[e.From] == res.Owner[e.To] {
					t.Fatalf("edge %d listed as cut but both endpoints owned by shard %d", e.ID, res.Owner[e.From])
				}
				for _, v := range []roadnet.VertexID{e.From, e.To} {
					if _, ok := inBoundary[v]; !ok {
						t.Fatalf("cut edge %d endpoint %d is not a boundary vertex", e.ID, v)
					}
				}
				cutByID[e.ID] = true
			}
			// Completeness in the other direction: every cross-shard edge of
			// the graph is in CutEdges, and every boundary vertex earns its
			// place with at least one incident cut edge.
			touched := make(map[roadnet.VertexID]bool)
			for i := 0; i < g.NumEdges(); i++ {
				e := g.Edge(roadnet.EdgeID(i))
				if res.Owner[e.From] != res.Owner[e.To] {
					if !cutByID[e.ID] {
						t.Fatalf("cross-shard edge %d missing from CutEdges", e.ID)
					}
					touched[e.From] = true
					touched[e.To] = true
				}
			}
			if len(cutByID) != len(res.CutEdges) {
				t.Fatalf("CutEdges holds duplicates: %d records, %d distinct", len(res.CutEdges), len(cutByID))
			}
			for v := range inBoundary {
				if !touched[v] {
					t.Fatalf("boundary vertex %d has no incident cut edge", v)
				}
			}
		}
	}
}

// TestExtractShardInduced checks that a shard subgraph is exactly the
// induced one: the full vertex table under global IDs, every intra-shard
// edge with weights bit-identical to the full graph's, and nothing else.
func TestExtractShardInduced(t *testing.T) {
	g := testGraph(t, 7, 8, 5)
	res, err := Split(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	totalEdges := 0
	for s := int32(0); s < 3; s++ {
		sub, toGlobal := ExtractShard(g, res.Owner, s)
		if sub.NumVertices() != g.NumVertices() {
			t.Fatalf("shard %d dropped vertices: %d != %d", s, sub.NumVertices(), g.NumVertices())
		}
		if len(toGlobal) != sub.NumEdges() {
			t.Fatalf("shard %d edge mapping has %d entries for %d edges", s, len(toGlobal), sub.NumEdges())
		}
		totalEdges += sub.NumEdges()
		for i := 0; i < sub.NumEdges(); i++ {
			le := sub.Edge(roadnet.EdgeID(i))
			ge := g.Edge(toGlobal[i])
			if res.Owner[le.From] != s || res.Owner[le.To] != s {
				t.Fatalf("shard %d edge %d endpoints not owned", s, i)
			}
			if le.From != ge.From || le.To != ge.To || le.Length != ge.Length || le.Time != ge.Time || le.Category != ge.Category {
				t.Fatalf("shard %d edge %d differs from global edge %d", s, i, ge.ID)
			}
		}
	}
	if totalEdges+len(res.CutEdges) != g.NumEdges() {
		t.Fatalf("edges split %d induced + %d cut != %d total", totalEdges, len(res.CutEdges), g.NumEdges())
	}
}

// TestBoundaryDistancesDecompose is the separator property itself: for
// random vertex pairs on different shards, the full-graph distance equals
// the min over boundary stitch points of within-shard distance to the
// boundary plus full-graph boundary-to-boundary distance plus within-shard
// distance from the boundary.
func TestBoundaryDistancesDecompose(t *testing.T) {
	g := testGraph(t, 7, 7, 17)
	res, err := Split(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	sub0, _ := ExtractShard(g, res.Owner, 0)
	sub1, _ := ExtractShard(g, res.Owner, 1)
	all := res.BoundaryVertices()
	nb := len(all)
	if nb == 0 {
		t.Fatal("no boundary vertices on a connected split graph")
	}
	pos := make(map[roadnet.VertexID]int, nb)
	for i, v := range all {
		pos[v] = i
	}
	// Full-graph boundary table, as BuildBundle computes it.
	eng := spath.NewDijkstraEngine(g, spath.ByLength)
	D := make([][]float64, nb)
	for i := range D {
		D[i] = make([]float64, nb)
	}
	eng.ManyToMany(all, all, math.Inf(1), D)

	ws := spath.GetWorkspace(g)
	defer ws.Release()
	checked := 0
	for src := 0; src < g.NumVertices() && checked < 12; src += 7 {
		for dst := 1; dst < g.NumVertices() && checked < 12; dst += 11 {
			if res.Owner[src] == res.Owner[dst] {
				continue
			}
			sSub, tSub := sub0, sub1
			if res.Owner[src] == 1 {
				sSub, tSub = sub1, sub0
			}
			want := make([]float64, 1)
			ws.BoundedDistances(g, roadnet.VertexID(src), []roadnet.VertexID{roadnet.VertexID(dst)}, math.Inf(1), spath.ByLength, want)

			bi := res.Boundary[res.Owner[src]]
			bj := res.Boundary[res.Owner[dst]]
			dsrc := make([]float64, len(bi))
			ddst := make([]float64, len(bj))
			wss := spath.GetWorkspace(sSub)
			wss.BoundedDistances(sSub, roadnet.VertexID(src), bi, math.Inf(1), spath.ByLength, dsrc)
			wss.Release()
			wst := spath.GetWorkspace(tSub)
			wst.BoundedDistancesRev(tSub, roadnet.VertexID(dst), bj, math.Inf(1), spath.ByLength, ddst)
			wst.Release()

			got := math.Inf(1)
			for ui, u := range bi {
				for wi, w := range bj {
					if v := dsrc[ui] + D[pos[u]][pos[w]] + ddst[wi]; v < got {
						got = v
					}
				}
			}
			if math.IsInf(want[0], 1) {
				if !math.IsInf(got, 1) {
					t.Fatalf("%d->%d: full graph unreachable but stitch gives %g", src, dst, got)
				}
				continue
			}
			// The stitch decomposes one optimal path (first boundary exit,
			// last boundary entry), so the min is attained exactly — but the
			// three legs are summed in a different association order than one
			// straight left-to-right relaxation, so allow one ulp-scale slack.
			if diff := math.Abs(got - want[0]); diff > want[0]*1e-12 {
				t.Fatalf("%d->%d: stitched %g != full-graph %g (diff %g)", src, dst, got, want[0], diff)
			}
			checked++
		}
	}
	if checked < 4 {
		t.Fatalf("only %d cross-shard pairs checked; graph or split degenerate", checked)
	}
}
