package partition

import (
	"math"
	"testing"

	"pathrank/internal/dataset"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/spath"
)

// testBundleArtifact builds a small serveable artifact (untrained model —
// scoring determinism is all the bundle machinery needs).
func testBundleArtifact(t testing.TB, seed int64) *pathrank.Artifact {
	t.Helper()
	g := testGraph(t, 7, 8, seed)
	model, err := pathrank.New(g.NumVertices(), pathrank.Config{
		EmbeddingDim: 8, Hidden: 6, Variant: pathrank.PRA2, Body: pathrank.GRUBody, Seed: seed,
	})
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return &pathrank.Artifact{
		Graph: g, Model: model,
		Candidates: dataset.Config{Strategy: dataset.DTkDI, K: 4, Threshold: 0.8},
	}
}

func TestBuildBundleRoundTrip(t *testing.T) {
	art := testBundleArtifact(t, 9)
	dir := t.TempDir()
	man, err := BuildBundle(art, dir, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if man.Parts != 3 || man.Vertices != art.Graph.NumVertices() || man.Edges != art.Graph.NumEdges() {
		t.Fatalf("manifest shape %+v does not match artifact", man)
	}

	loaded, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint != man.Fingerprint || loaded.Parts != man.Parts {
		t.Fatalf("reloaded manifest differs: %+v vs %+v", loaded, man)
	}

	sm, err := LoadShardMapFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Parts != 3 || sm.NumVertices != art.Graph.NumVertices() || sm.NumEdges != art.Graph.NumEdges() {
		t.Fatalf("shard map shape: %+v", sm)
	}
	if sm.Fingerprint != man.Fingerprint {
		t.Fatalf("shard map fingerprint %s != manifest %s", sm.Fingerprint, man.Fingerprint)
	}

	// The embedded model round-trips and matches the bundle fingerprint.
	model, err := sm.Model()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := model.FingerprintHex()
	if err != nil {
		t.Fatal(err)
	}
	if fp != sm.Fingerprint {
		t.Fatalf("shard map model fingerprint %s != recorded %s", fp, sm.Fingerprint)
	}

	// Total weights bound every loopless path: they must equal the exact
	// edge-weight sums.
	var wantLen, wantTime float64
	for i := 0; i < art.Graph.NumEdges(); i++ {
		e := art.Graph.Edge(roadnet.EdgeID(i))
		wantLen += e.Length
		wantTime += e.Time
	}
	if sm.TotalLen != wantLen || sm.TotalTime != wantTime {
		t.Fatalf("total weights %g/%g != %g/%g", sm.TotalLen, sm.TotalTime, wantLen, wantTime)
	}

	// Boundary tables are exact full-graph distances.
	all := sm.GlobalBoundary()
	nb := len(all)
	if nb == 0 {
		t.Fatal("empty boundary")
	}
	if len(sm.DLen) != nb*nb || len(sm.DTime) != nb*nb {
		t.Fatalf("boundary tables %d/%d entries, want %d", len(sm.DLen), len(sm.DTime), nb*nb)
	}
	ws := spath.GetWorkspace(art.Graph)
	defer ws.Release()
	row := make([]float64, nb)
	for _, bi := range []int{0, nb / 2, nb - 1} {
		ws.BoundedDistances(art.Graph, all[bi], all, math.Inf(1), spath.ByLength, row)
		for j := range row {
			if row[j] != sm.DLen[bi*nb+j] && !(math.IsInf(row[j], 1) && math.IsInf(sm.DLen[bi*nb+j], 1)) {
				t.Fatalf("DLen[%d,%d] = %g, full graph says %g", bi, j, sm.DLen[bi*nb+j], row[j])
			}
		}
	}

	// Every shard artifact loads, carries its shard identity, and keeps the
	// full vertex table with only induced edges.
	edgeSum := 0
	for i := 0; i < 3; i++ {
		sart, err := pathrank.LoadArtifactFile(dir + "/" + ShardArtifactName(i))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if sart.Shard == nil {
			t.Fatalf("shard %d artifact carries no shard metadata", i)
		}
		if sart.Shard.Index != i || sart.Shard.Parts != 3 {
			t.Fatalf("shard %d identity: %+v", i, sart.Shard)
		}
		if sart.Graph.NumVertices() != art.Graph.NumVertices() {
			t.Fatalf("shard %d dropped vertices", i)
		}
		if len(sart.Shard.EdgeGlobal) != sart.Graph.NumEdges() {
			t.Fatalf("shard %d edge mapping size", i)
		}
		if sart.Prep == nil || sart.Prep.CH == nil {
			t.Fatalf("shard %d artifact has no CH prep", i)
		}
		sfp, err := sart.Model.FingerprintHex()
		if err != nil {
			t.Fatal(err)
		}
		if sfp != sm.Fingerprint {
			t.Fatalf("shard %d model fingerprint %s != bundle %s", i, sfp, sm.Fingerprint)
		}
		edgeSum += sart.Graph.NumEdges()
	}
	if edgeSum+len(sm.CutEdges) != art.Graph.NumEdges() {
		t.Fatalf("edges: %d induced + %d cut != %d", edgeSum, len(sm.CutEdges), art.Graph.NumEdges())
	}
}

func TestShardMapRejectsCorruption(t *testing.T) {
	art := testBundleArtifact(t, 4)
	dir := t.TempDir()
	if _, err := BuildBundle(art, dir, 2, nil); err != nil {
		t.Fatal(err)
	}
	sm, err := LoadShardMapFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	// validate() runs on load; breaking an invariant and re-validating must
	// fail rather than let the router serve wrong routes.
	sm.Owner[0] = 99
	if err := sm.validate(); err == nil {
		t.Fatal("out-of-range owner accepted")
	}
}
