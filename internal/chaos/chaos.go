// Package chaos is the fault-injection test suite for the live
// ingest→retrain→swap loop. The scenario tests (chaos_test.go) wire a
// serve.Server and stream.Service together exactly as pathrank-serve
// does, drive them with HTTP load, and use internal/fault plans to kill
// WAL writes, corrupt artifact bytes, and panic workers — asserting that
// the canary gate refuses bad artifacts, degraded mode loses nothing
// beyond its documented bound, and panic containment keeps ingest alive.
//
// The non-test code here is the corruption toolkit the scenarios (and
// the serve package's own canary tests) share. It deliberately imports
// only the artifact layer, never serve or stream, so any test package
// may use it without cycles.
package chaos

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"pathrank/internal/pathrank"
)

// paramWire mirrors internal/nn's serialized parameter record. Gob
// matches fields by name, so this package can rewrite model bytes
// without nn exporting its wire struct — exactly the stance of an
// attacker (or a flaky disk) that flips bits inside a structurally
// valid bundle.
type paramWire struct {
	Name   string
	Rows   int
	Cols   int
	W      []float64
	Frozen bool
}

// PoisonModelWeights returns a clone of m whose every weight is NaN. The
// clone is "corrupt but loadable": it round-trips Save/Load and the
// artifact container's checksum (which covers exactly these bytes — they
// are valid bytes, encoding garbage), passes every shape check, and
// fails only where it matters — every score it produces is NaN. This is
// the artifact the canary gate exists to keep out of service.
func PoisonModelWeights(m *pathrank.Model) (*pathrank.Model, error) {
	clone, err := m.Clone()
	if err != nil {
		return nil, fmt.Errorf("chaos: clone model: %w", err)
	}
	var buf bytes.Buffer
	if err := clone.Save(&buf); err != nil {
		return nil, fmt.Errorf("chaos: save model: %w", err)
	}
	var wire []paramWire
	if err := gob.NewDecoder(&buf).Decode(&wire); err != nil {
		return nil, fmt.Errorf("chaos: decode model wire format: %w", err)
	}
	for i := range wire {
		for j := range wire[i].W {
			wire[i].W[j] = math.NaN()
		}
	}
	var poisoned bytes.Buffer
	if err := gob.NewEncoder(&poisoned).Encode(wire); err != nil {
		return nil, fmt.Errorf("chaos: re-encode model: %w", err)
	}
	if err := clone.Load(&poisoned); err != nil {
		return nil, fmt.Errorf("chaos: poisoned model failed to load — the corruption is supposed to be loadable: %w", err)
	}
	return clone, nil
}

// PoisonArtifact returns a new artifact sharing everything with art
// except the model, which is NaN-poisoned via PoisonModelWeights.
// Persisted with pathrank.SaveArtifactFileAtomic it yields a bundle that
// loads cleanly everywhere and serves garbage.
func PoisonArtifact(art *pathrank.Artifact) (*pathrank.Artifact, error) {
	model, err := PoisonModelWeights(art.Model)
	if err != nil {
		return nil, err
	}
	lin := art.Lineage
	lin.Generation++
	return &pathrank.Artifact{
		Graph:      art.Graph,
		Embeddings: art.Embeddings,
		Model:      model,
		Candidates: art.Candidates,
		Prep:       art.Prep,
		Lineage:    lin,
	}, nil
}
