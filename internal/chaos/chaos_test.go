package chaos

import (
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pathrank/internal/api"
	"pathrank/internal/fault"
	"pathrank/internal/pathrank"
	"pathrank/internal/serve"
	"pathrank/internal/stream"
	"pathrank/internal/traj"
)

// mustPlan compiles a fault spec with the scenario seed.
func mustPlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	plan, err := fault.ParseSpec(spec, chaosSeed())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestChaosCanaryRejectsCorruptArtifact is acceptance scenario (a): a
// corrupt-but-loadable artifact (NaN-poisoned weights, valid bytes and
// shapes) lands on the artifact path and is reloaded under live query
// load. The canary gate must refuse it, quarantine the file, and the
// old snapshot must answer every request throughout.
func TestChaosCanaryRejectsCorruptArtifact(t *testing.T) {
	h := newHarness(t)
	art, _ := testWorld(t)
	before := h.srv.Fingerprint()

	stop := make(chan struct{})
	stats, wait := h.startLoad(t, stop)
	time.Sleep(50 * time.Millisecond) // load flowing before the fault

	bad, err := PoisonArtifact(art)
	if err != nil {
		t.Fatal(err)
	}
	if err := pathrank.SaveArtifactFileAtomic(h.artPath, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := h.srv.Reload(h.artPath); !errors.Is(err, serve.ErrSwapRejected) {
		t.Fatalf("Reload(poisoned) = %v, want ErrSwapRejected", err)
	}

	// The poisoned generation was never served.
	if got := h.srv.Fingerprint(); got != before {
		t.Fatalf("serving fingerprint changed under a rejected artifact: %s -> %s", before, got)
	}
	// The bad file is quarantined, out of the watcher's path.
	if _, err := os.Stat(h.artPath); !os.IsNotExist(err) {
		t.Fatalf("rejected artifact still at %s", h.artPath)
	}
	rej := h.srv.LastSwapRejection()
	if rej == nil || rej.Quarantined == "" {
		t.Fatalf("no quarantine recorded: %+v", rej)
	}
	if filepath.Dir(rej.Quarantined) != filepath.Dir(h.artPath) {
		t.Fatalf("quarantined outside the artifact directory: %s", rej.Quarantined)
	}

	// A good artifact recovers the path: save and reload swaps normally.
	if err := pathrank.SaveArtifactFileAtomic(h.artPath, art); err != nil {
		t.Fatal(err)
	}
	if _, err := h.srv.Reload(h.artPath); err != nil {
		t.Fatalf("reload of the healthy artifact after quarantine: %v", err)
	}

	time.Sleep(50 * time.Millisecond) // load continuing after the fault
	assertCleanLoad(t, stats, stop, wait)

	// The refusal is on the metrics surface.
	resp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "pathrank_swap_rejected_total 1") {
		t.Fatal("pathrank_swap_rejected_total not incremented on /metrics")
	}
}

// TestChaosWALFailureDegradesAndRecovers is acceptance scenario (b):
// injected WAL append failures flip /healthz to degraded while queries
// keep being answered; when the fault lifts, the parked backlog re-syncs
// and the service reports ready — and a fresh pipeline over the same WAL
// directory replays every observation (log ⊇ window held throughout).
func TestChaosWALFailureDegradesAndRecovers(t *testing.T) {
	h := newHarness(t)
	art, trips := testWorld(t)
	recs := sampleGPS(art, trips, chaosSeed()*1000)

	stop := make(chan struct{})
	stats, wait := h.startLoad(t, stop)

	for _, r := range recs[:3] {
		h.ingest(t, r)
	}
	waitFor(t, 10*time.Second, func() bool { return h.svc.Stats().Matched == 3 }, "baseline matches")
	if hz := h.healthz(t); hz.Status != "ok" || hz.Pipeline == nil || hz.Pipeline.State != api.PipelineReady {
		t.Fatalf("baseline healthz = %+v", hz)
	}

	restore := fault.Enable(mustPlan(t, "wal/append:error"))
	for _, r := range recs[3:7] {
		h.ingest(t, r)
	}
	waitFor(t, 10*time.Second, func() bool {
		hz := h.healthz(t)
		return hz.Pipeline != nil && hz.Pipeline.State == api.PipelineDegraded && hz.Pipeline.Parked == 4
	}, "degraded healthz with the backlog parked")
	hz := h.healthz(t)
	if hz.Status != api.PipelineDegraded {
		t.Fatalf("top-level health status %q while the pipeline is degraded", hz.Status)
	}
	if hz.Pipeline.Reason == "" || hz.Pipeline.Lost != 0 {
		t.Fatalf("degraded pipeline block = %+v", hz.Pipeline)
	}

	restore()
	waitFor(t, 20*time.Second, func() bool {
		s := h.svc.Stats()
		return !s.Degraded && s.Parked == 0 && s.Matched == 7
	}, "recovery to ready")
	if hz := h.healthz(t); hz.Status != "ok" || hz.Pipeline.State != api.PipelineReady {
		t.Fatalf("post-recovery healthz = %+v", hz)
	}

	// Queries never suffered.
	assertCleanLoad(t, stats, stop, wait)

	// Log ⊇ window: shut the harness down to release the log, then replay
	// the same directory into a fresh pipeline — all 7 observations,
	// including the 4 that rode out the outage parked, must come back.
	h.shutdown(t)
	svc2, err := stream.New(art, stream.Config{WALDir: h.walDir, MinObservations: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Stats().Recovered; got != 7 {
		t.Fatalf("replayed %d observations from the WAL, want 7 (parked backlog lost?)", got)
	}
}

// TestChaosWorkerPanicContained is acceptance scenario (c): a seeded
// panic schedule kills match workers mid-trajectory. The panics must be
// contained (counted, workers keep draining), ingest must continue, and
// zero HTTP requests may fail.
func TestChaosWorkerPanicContained(t *testing.T) {
	h := newHarness(t)
	art, trips := testWorld(t)
	recs := sampleGPS(art, trips, chaosSeed()*2000)

	stop := make(chan struct{})
	stats, wait := h.startLoad(t, stop)

	restore := fault.Enable(mustPlan(t, "stream/match:panic:times=2"))
	defer restore()
	for _, r := range recs[:5] {
		h.ingest(t, r)
	}
	waitFor(t, 10*time.Second, func() bool {
		s := h.svc.Stats()
		return s.WorkerPanics == 2 && s.Matched == 3
	}, "two contained panics, ingest continuing")

	hz := h.healthz(t)
	if hz.Status != "ok" {
		t.Fatalf("contained panics must not degrade health: %+v", hz)
	}
	if hz.Pipeline.WorkerPanics != 2 {
		t.Fatalf("healthz worker_panics = %d, want 2", hz.Pipeline.WorkerPanics)
	}
	assertCleanLoad(t, stats, stop, wait)
}

// TestChaosRetrainPublishesThroughCanary closes the loop end to end:
// ingest over HTTP → explicit retrain → the new generation published
// through the canary-gated hot swap — generation and fingerprint both
// advance, under live load, with zero failed requests.
func TestChaosRetrainPublishesThroughCanary(t *testing.T) {
	h := newHarness(t)
	art, trips := testWorld(t)
	recs := sampleGPS(art, trips, chaosSeed()*3000)

	stop := make(chan struct{})
	stats, wait := h.startLoad(t, stop)

	for _, r := range recs[:4] {
		h.ingest(t, r)
	}
	waitFor(t, 10*time.Second, func() bool { return h.svc.Stats().Matched == 4 }, "matches before retrain")

	before := h.srv.Fingerprint()
	next, err := h.svc.RetrainNow()
	if err != nil {
		t.Fatalf("retrain: %v", err)
	}
	if next.Lineage.Generation != 1 {
		t.Fatalf("retrained generation %d, want 1", next.Lineage.Generation)
	}
	if got := h.srv.Fingerprint(); got == before {
		t.Fatal("publish through the canary gate did not swap the serving snapshot")
	}
	assertCleanLoad(t, stats, stop, wait)
}

// sampleGPS converts trips into seeded noisy GPS streams.
func sampleGPS(art *pathrank.Artifact, trips []traj.Trip, seed int64) [][]traj.GPSRecord {
	out := make([][]traj.GPSRecord, 0, len(trips))
	for i, tr := range trips {
		cfg := traj.DefaultGPSConfig()
		cfg.Seed = seed + int64(i)
		out = append(out, traj.SampleGPS(art.Graph, tr.Path, cfg))
	}
	return out
}
