package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathrank/internal/api"
	"pathrank/internal/dataset"
	"pathrank/internal/geo"
	"pathrank/internal/node2vec"
	"pathrank/internal/obsv"
	"pathrank/internal/pathrank"
	"pathrank/internal/roadnet"
	"pathrank/internal/serve"
	"pathrank/internal/stream"
	"pathrank/internal/traj"
)

// chaosSeed is the deterministic seed of every scenario: the fault
// schedules, the load generator's query mix, and the GPS noise all
// derive from it, so a failing run reproduces with the same CHAOS_SEED.
// CI runs a small seed matrix.
func chaosSeed() int64 {
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		if s, err := strconv.ParseInt(v, 10, 64); err == nil {
			return s
		}
	}
	return 1
}

var (
	worldOnce  sync.Once
	worldErr   error
	worldArt   *pathrank.Artifact
	worldTrips []traj.Trip
)

// testWorld trains one small artifact and trip set for every scenario
// (training dominates the package's test time).
func testWorld(t testing.TB) (*pathrank.Artifact, []traj.Trip) {
	t.Helper()
	worldOnce.Do(func() {
		g, err := roadnet.Generate(roadnet.GenConfig{
			Rows: 8, Cols: 8, SpacingM: 250, JitterFrac: 0.15,
			RemoveFrac: 0.05, ArterialEvery: 4, Motorway: false,
			Origin: geo.Point{Lon: 10, Lat: 57}, Seed: 31,
		})
		if err != nil {
			worldErr = err
			return
		}
		drivers := traj.NewPopulation(traj.PopulationConfig{NumDrivers: 4, Seed: 32})
		trips, err := traj.GenerateTrips(g, drivers, traj.TripConfig{TripsPerDriver: 3, MinHops: 5, Seed: 33})
		if err != nil {
			worldErr = err
			return
		}
		mcfg := pathrank.Config{EmbeddingDim: 8, Hidden: 6, Variant: pathrank.PRA2, Body: pathrank.GRUBody, Seed: 5}
		model, err := pathrank.New(g.NumVertices(), mcfg)
		if err != nil {
			worldErr = err
			return
		}
		emb := node2vec.Embed(g, node2vec.DefaultWalkConfig(), node2vec.DefaultTrainConfig(mcfg.EmbeddingDim))
		if err := model.InitEmbeddings(emb); err != nil {
			worldErr = err
			return
		}
		queries, err := dataset.Generate(g, trips, dataset.Config{Strategy: dataset.TkDI, K: 3, IncludeTruth: true})
		if err != nil {
			worldErr = err
			return
		}
		if _, err := model.Train(queries, pathrank.TrainConfig{Epochs: 1, LR: 0.005, ClipNorm: 5, Seed: 1}); err != nil {
			worldErr = err
			return
		}
		worldArt = &pathrank.Artifact{
			Graph: g, Model: model,
			Candidates: dataset.Config{Strategy: dataset.TkDI, K: 3},
			Lineage:    pathrank.Lineage{TrainedOn: len(queries), TotalObserved: len(queries), Note: "offline"},
		}
		worldTrips = trips
	})
	if worldErr != nil {
		t.Fatalf("build chaos world: %v", worldErr)
	}
	return worldArt, worldTrips
}

// harness wires a serve.Server and a stream.Service together exactly as
// cmd/pathrank-serve does — one shared metrics registry, the retrainer
// publishing through Server.Swap (canary gate enabled), the pipeline
// backing /v1/ingest, /v1/provenance, and the /healthz pipeline block —
// and runs it behind an httptest listener.
type harness struct {
	srv     *serve.Server
	svc     *stream.Service
	ts      *httptest.Server
	artPath string
	walDir  string

	cancel   context.CancelFunc
	runDone  chan struct{}
	stopOnce sync.Once
}

// shutdown tears the harness down in order (listener, pipeline, server)
// exactly once; scenario (b) calls it mid-test to release the WAL before
// replaying the directory, every other scenario leaves it to Cleanup.
func (h *harness) shutdown(t *testing.T) {
	h.stopOnce.Do(func() {
		h.ts.Close()
		h.cancel()
		<-h.runDone
		if err := h.svc.Close(); err != nil {
			t.Errorf("close pipeline: %v", err)
		}
		h.srv.Close()
	})
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	art, _ := testWorld(t)
	dir := t.TempDir()
	h := &harness{
		artPath: filepath.Join(dir, "model.prart"),
		walDir:  filepath.Join(dir, "wal"),
	}
	if err := pathrank.SaveArtifactFileAtomic(h.artPath, art); err != nil {
		t.Fatal(err)
	}
	loaded, err := pathrank.LoadArtifactFile(h.artPath)
	if err != nil {
		t.Fatal(err)
	}
	registry := obsv.NewRegistry()
	h.svc, err = stream.New(loaded, stream.Config{
		QueueSize: 64, Workers: 2, Window: 128,
		MinObservations: 1 << 20, // scenarios trigger retrains explicitly
		Train:           pathrank.TrainConfig{Epochs: 1, LR: 0.001, ClipNorm: 5, Seed: 1},
		ArtifactPath:    h.artPath,
		WALDir:          h.walDir,
		Metrics:         registry,
		Publish: func(a *pathrank.Artifact) error {
			_, err := h.srv.Swap(a)
			return err
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.srv, err = serve.New(loaded, serve.Config{
		Metrics:      registry,
		ArtifactPath: h.artPath,
		// The canary gate guards every publish. Divergence is left at the
		// maximum: a one-epoch fine-tune can legitimately flip a near-tie
		// in a K=3 candidate set (serve's unit tests pin the bound); the
		// finite-score and non-empty-path invariants are what keep the
		// poisoned artifact out.
		CanaryQueries:       6,
		CanaryMaxDivergence: 1,
		Ingest:              h.svc,
		Provenance:          h.svc,
		Pipeline:            h.svc,
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.ts = httptest.NewServer(h.srv.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	h.runDone = make(chan struct{})
	go func() {
		defer close(h.runDone)
		_ = h.svc.Run(ctx)
	}()
	t.Cleanup(func() { h.shutdown(t) })
	return h
}

// ingest posts one GPS trajectory through HTTP, as producers would.
func (h *harness) ingest(t *testing.T, recs []traj.GPSRecord) {
	t.Helper()
	type sample struct {
		Lon float64 `json:"lon"`
		Lat float64 `json:"lat"`
		T   float64 `json:"t"`
	}
	body := struct {
		Records []sample `json:"records"`
	}{Records: make([]sample, len(recs))}
	for i, r := range recs {
		body.Records[i] = sample{Lon: r.Point.Lon, Lat: r.Point.Lat, T: r.TimeOffset}
	}
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(h.ts.URL+"/v1/ingest", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d, want 202", resp.StatusCode)
	}
}

// healthz fetches and decodes the health endpoint's chaos-relevant slice.
type healthz struct {
	Status   string              `json:"status"`
	Pipeline *api.PipelineHealth `json:"pipeline"`
}

func (h *harness) healthz(t *testing.T) healthz {
	t.Helper()
	resp, err := http.Get(h.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out healthz
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// loadStats is what the background load generator observed: every
// response that was neither a ranking nor a typed unroutable verdict
// counts as a failure.
type loadStats struct {
	requests atomic.Int64
	failures atomic.Int64
	firstErr atomic.Value
}

// startLoad hammers /v2/rank from two goroutines with a seeded query
// mix until stop is closed; the returned wait joins them.
func (h *harness) startLoad(t *testing.T, stop chan struct{}) (*loadStats, func()) {
	t.Helper()
	art, _ := testWorld(t)
	n := art.Graph.NumVertices()
	stats := &loadStats{}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(chaosSeed() + int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				src := rng.Intn(n)
				dst := rng.Intn(n)
				if src == dst {
					continue
				}
				payload := fmt.Sprintf(`{"src": %d, "dst": %d}`, src, dst)
				resp, err := http.Post(h.ts.URL+"/v2/rank", "application/json", bytes.NewReader([]byte(payload)))
				if err != nil {
					stats.failures.Add(1)
					stats.firstErr.CompareAndSwap(nil, fmt.Errorf("rank %d->%d: %w", src, dst, err))
					continue
				}
				resp.Body.Close()
				stats.requests.Add(1)
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					stats.failures.Add(1)
					stats.firstErr.CompareAndSwap(nil,
						fmt.Errorf("rank %d->%d: status %d", src, dst, resp.StatusCode))
				}
			}
		}(w)
	}
	return stats, wg.Wait
}

// assertCleanLoad stops the generator and fails the test on any dropped
// or errored request.
func assertCleanLoad(t *testing.T, stats *loadStats, stop chan struct{}, wait func()) {
	t.Helper()
	close(stop)
	wait()
	if stats.requests.Load() == 0 {
		t.Fatal("load generator sent no requests")
	}
	if n := stats.failures.Load(); n != 0 {
		err, _ := stats.firstErr.Load().(error)
		t.Fatalf("%d of %d requests failed during the fault (first: %v)", n, stats.requests.Load(), err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
