// Package obsv is a dependency-free metrics registry that exposes
// counters, gauges, and histograms in the Prometheus text exposition
// format (version 0.0.4).
//
// The package exists so the serving stack can be scraped by any
// Prometheus-compatible collector without importing client libraries: a
// Registry holds metric families, each family carries a fixed label
// schema, and WritePrometheus renders the whole registry as valid
// exposition text. A Registry is also an http.Handler, so mounting it at
// GET /metrics is one line.
//
// Metric types follow Prometheus semantics exactly:
//
//   - Counter: a monotonically non-decreasing float. Use for totals
//     (requests served, cache hits, errors by code).
//   - Gauge: a float that can go up and down. Set-style gauges are updated
//     by the instrumented code; func-style gauges (GaugeFunc) are sampled
//     at scrape time, so they always report live state (queue depths,
//     snapshot age) without a background updater.
//   - Histogram: observations bucketed by configurable upper bounds, with
//     _sum and _count series. Buckets are cumulative in the exposition
//     (each le bucket counts every observation at or below its bound), so
//     quantiles can be estimated server-side with histogram_quantile.
//
// Families are registered once, at construction, with a fixed name, help
// string, and label-name schema; children (one per distinct label-value
// tuple) materialize on first use via With. Registration panics on an
// invalid or duplicate name — like expvar.Publish, a bad registration is a
// programming error, not a runtime condition. All metric operations and
// scrapes are safe for concurrent use, and the hot-path operations
// (Counter.Add, Histogram.Observe) are lock-free.
//
// Every family is rendered on every scrape, HELP and TYPE lines included,
// even before its first child exists — a scraper (or a documentation test)
// therefore sees the complete metric surface of a freshly started process.
package obsv

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefLatencyBuckets spans request latencies from 50µs to 10s, matched to
// this service's range: a cached rank answer costs tens of microseconds,
// an uncached D-TkDI enumeration hundreds of microseconds to milliseconds,
// and a saturated or shedding server seconds.
var DefLatencyBuckets = []float64{
	5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
	2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefSizeBuckets is a powers-of-two scale for count-valued distributions
// (batch sizes, paths per scoring sweep).
var DefSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Registry is a collection of metric families sharing one exposition
// endpoint. The zero value is not usable; create one with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	names    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// metricKind is the TYPE line vocabulary.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one named metric with a fixed label schema and a child per
// label-value tuple.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]any // joined label values -> *value | *histogram
	fn       func() float64 // GaugeFunc families sample this at scrape time
}

// register validates and installs a family, panicking on misuse (invalid
// or duplicate name, invalid label, unsorted buckets).
func (r *Registry) register(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("obsv: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("obsv: invalid label name %q on %q", l, f.name))
		}
	}
	for i := 1; i < len(f.buckets); i++ {
		if !(f.buckets[i] > f.buckets[i-1]) {
			panic(fmt.Sprintf("obsv: histogram %q buckets must be strictly increasing", f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic(fmt.Sprintf("obsv: duplicate metric name %q", f.name))
	}
	r.names[f.name] = true
	f.children = make(map[string]any)
	r.families = append(r.families, f)
}

// validName reports whether s is a legal Prometheus metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]* (colons are reserved for recording rules but
// legal in the grammar; labels additionally exclude them via validName's
// callers not using them).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// CounterVec is a counter family; obtain children with With.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family; obtain children with With.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family; obtain children with With.
type HistogramVec struct{ f *family }

// Counter registers a counter family with the given label schema. With no
// labels the returned vec has exactly one child, With().
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, kind: kindCounter, labels: labels}
	r.register(f)
	return &CounterVec{f}
}

// Gauge registers a gauge family with the given label schema.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	f := &family{name: name, help: help, kind: kindGauge, labels: labels}
	r.register(f)
	return &GaugeVec{f}
}

// GaugeFunc registers an unlabeled gauge whose value is sampled by calling
// fn at scrape time. fn must be safe for concurrent use and must not call
// back into the registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := &family{name: name, help: help, kind: kindGauge, fn: fn}
	r.register(f)
}

// Histogram registers a histogram family. buckets are the upper bounds of
// the observation buckets, strictly increasing; the +Inf bucket is
// implicit. nil buckets use DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	f := &family{name: name, help: help, kind: kindHistogram, labels: labels,
		buckets: append([]float64(nil), buckets...)}
	r.register(f)
	return &HistogramVec{f}
}

// childKey joins label values with a separator no valid UTF-8 label value
// contains as a lone byte.
func childKey(values []string) string {
	return strings.Join(values, "\xff")
}

// child returns (creating if needed) the child for a label-value tuple.
func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obsv: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := mk()
	f.children[key] = c
	return c
}

// value is a lock-free float64 cell shared by counters and gauges.
type value struct{ bits atomic.Uint64 }

func (v *value) add(delta float64) {
	for {
		old := v.bits.Load()
		if v.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

func (v *value) set(x float64) { v.bits.Store(math.Float64bits(x)) }
func (v *value) get() float64  { return math.Float64frombits(v.bits.Load()) }

// Counter is one child of a counter family.
type Counter struct{ v *value }

// With returns the counter for the given label values (in the schema's
// registration order), creating it on first use.
func (c *CounterVec) With(values ...string) Counter {
	return Counter{c.f.child(values, func() any { return new(value) }).(*value)}
}

// Inc adds 1.
func (c Counter) Inc() { c.v.add(1) }

// Add adds delta, which must be non-negative (counters are monotone).
func (c Counter) Add(delta float64) {
	if delta < 0 {
		panic("obsv: counter decrease")
	}
	c.v.add(delta)
}

// Value returns the current count (used by tests and compat bridges).
func (c Counter) Value() float64 { return c.v.get() }

// Gauge is one child of a gauge family.
type Gauge struct{ v *value }

// With returns the gauge for the given label values.
func (g *GaugeVec) With(values ...string) Gauge {
	return Gauge{g.f.child(values, func() any { return new(value) }).(*value)}
}

// Set replaces the gauge value.
func (g Gauge) Set(x float64) { g.v.set(x) }

// Add adjusts the gauge by delta (may be negative).
func (g Gauge) Add(delta float64) { g.v.add(delta) }

// Value returns the current value.
func (g Gauge) Value() float64 { return g.v.get() }

// histogram is one child of a histogram family: per-bucket observation
// counts (non-cumulative internally; rendered cumulative), plus sum and
// count.
type histogram struct {
	buckets []float64
	counts  []atomic.Uint64 // len(buckets)+1; last is the +Inf bucket
	count   atomic.Uint64
	sum     value
}

// Histogram is a handle on one child of a histogram family.
type Histogram struct{ h *histogram }

// With returns the histogram for the given label values.
func (h *HistogramVec) With(values ...string) Histogram {
	return Histogram{h.f.child(values, func() any {
		return &histogram{buckets: h.f.buckets, counts: make([]atomic.Uint64, len(h.f.buckets)+1)}
	}).(*histogram)}
}

// Observe records one observation.
func (h Histogram) Observe(x float64) {
	// Latency distributions are heavily skewed toward the low buckets, so a
	// linear scan from the bottom beats binary search on the hot path.
	i := 0
	for i < len(h.h.buckets) && x > h.h.buckets[i] {
		i++
	}
	h.h.counts[i].Add(1)
	h.h.count.Add(1)
	h.h.sum.add(x)
}

// Count returns the total number of observations (used by tests).
func (h Histogram) Count() uint64 { return h.h.count.Load() }

// WritePrometheus renders every family in registration order as Prometheus
// text exposition format v0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP implements the scrape endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

// write renders one family: HELP, TYPE, then children sorted by label
// values so consecutive scrapes are byte-stable.
func (f *family) write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)

	if f.fn != nil {
		fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.fn()))
		_, err := io.WriteString(w, b.String())
		return err
	}

	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()

	for i, k := range keys {
		var values []string
		if k != "" || len(f.labels) > 0 {
			values = strings.Split(k, "\xff")
		}
		switch c := children[i].(type) {
		case *value:
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(c.get()))
		case *histogram:
			cum := uint64(0)
			for j, ub := range c.buckets {
				cum += c.counts[j].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, values, "le", formatFloat(ub)), cum)
			}
			cum += c.counts[len(c.buckets)].Load()
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", "+Inf"), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(c.sum.get()))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), c.count.Load())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelString renders a {k="v",...} label set, appending the extra pair
// (the le bucket bound) when extraKey is non-empty. Returns "" for an
// empty set.
func labelString(names, values []string, extraKey, extraVal string) string {
	if len(names) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, integers without an exponent.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
