package obsv

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

// scrape renders the registry to a string.
func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// parseExposition is a minimal validity checker for the text format: every
// non-comment line must be `name{labels} value` or `name value`, HELP/TYPE
// must precede their family's samples, and TYPE must be a known kind. It
// returns the sample lines keyed by full series name (with labels).
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.SplitN(rest, " ", 2)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[1])
			}
			typed[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value on sample line %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(strings.TrimPrefix(valStr, "+"), 64)
		if err != nil && valStr != "+Inf" {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, valStr, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label set %q", ln+1, series)
			}
			name = series[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[name]; !ok {
			if _, ok := typed[base]; !ok {
				t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, series)
			}
		}
		samples[series] = val
	}
	return samples
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("test_requests_total", "Requests served.", "endpoint")
	reqs.With("/v1/rank").Add(3)
	reqs.With("/v2/rank").Inc()
	g := r.Gauge("test_in_flight", "In-flight requests.")
	g.With().Set(2)
	g.With().Add(-1)
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 42.5 })

	samples := parseExposition(t, scrape(t, r))
	if v := samples[`test_requests_total{endpoint="/v1/rank"}`]; v != 3 {
		t.Fatalf("counter /v1/rank = %v, want 3", v)
	}
	if v := samples[`test_requests_total{endpoint="/v2/rank"}`]; v != 1 {
		t.Fatalf("counter /v2/rank = %v, want 1", v)
	}
	if v := samples["test_in_flight"]; v != 1 {
		t.Fatalf("gauge = %v, want 1", v)
	}
	if v := samples["test_uptime_seconds"]; v != 42.5 {
		t.Fatalf("gauge func = %v, want 42.5", v)
	}
}

func TestFamiliesRenderBeforeFirstChild(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_errors_total", "Errors.", "code")
	r.Histogram("test_latency_seconds", "Latency.", nil, "endpoint")
	out := scrape(t, r)
	for _, want := range []string{
		"# HELP test_errors_total Errors.",
		"# TYPE test_errors_total counter",
		"# TYPE test_latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsCumulativeAndMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_dur_seconds", "Durations.", []float64{0.01, 0.1, 1})
	obs := []float64{0.005, 0.05, 0.05, 0.5, 5}
	for _, x := range obs {
		h.With().Observe(x)
	}
	out := scrape(t, r)
	samples := parseExposition(t, out)

	bounds := []string{"0.01", "0.1", "1", "+Inf"}
	prev := -1.0
	for _, le := range bounds {
		key := fmt.Sprintf(`test_dur_seconds_bucket{le="%s"}`, le)
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s in:\n%s", key, out)
		}
		if v < prev {
			t.Fatalf("bucket le=%s count %v < previous %v: buckets not cumulative", le, v, prev)
		}
		prev = v
	}
	if v := samples[`test_dur_seconds_bucket{le="+Inf"}`]; v != float64(len(obs)) {
		t.Fatalf("+Inf bucket = %v, want %d", v, len(obs))
	}
	if v := samples[`test_dur_seconds_bucket{le="0.1"}`]; v != 3 {
		t.Fatalf("le=0.1 bucket = %v, want 3", v)
	}
	if v := samples["test_dur_seconds_count"]; v != float64(len(obs)) {
		t.Fatalf("count = %v, want %d", v, len(obs))
	}
	var sum float64
	for _, x := range obs {
		sum += x
	}
	if v := samples["test_dur_seconds_sum"]; math.Abs(v-sum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", v, sum)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_weird_total", "Weird labels.", "path")
	c.With("a\"b\\c\nd").Inc()
	out := scrape(t, r)
	want := `test_weird_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("escaped sample %q missing from:\n%s", want, out)
	}
	// The rendered line must contain no raw newline inside the label value.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "test_weird_total{") && !strings.HasSuffix(line, " 1") {
			t.Fatalf("label value leaked a raw newline: %q", line)
		}
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_help_total", "line one\nline two \\ backslash")
	out := scrape(t, r)
	if !strings.Contains(out, `# HELP test_help_total line one\nline two \\ backslash`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_ok_total", "ok")
	for name, fn := range map[string]func(){
		"duplicate":    func() { r.Counter("test_ok_total", "dup") },
		"bad name":     func() { r.Counter("9bad", "bad") },
		"bad label":    func() { r.Counter("test_l_total", "bad", "9bad") },
		"bad buckets":  func() { r.Histogram("test_h_seconds", "bad", []float64{1, 1}) },
		"neg counter":  func() { r.Counter("test_neg_total", "neg").With().Add(-1) },
		"wrong labels": func() { r.Counter("test_w_total", "w", "a").With("x", "y").Inc() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "c", "w")
	h := r.Histogram("test_conc_seconds", "h", []float64{0.5})
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				c.With(strconv.Itoa(i)).Inc()
				h.With().Observe(float64(j%2) * 0.9)
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		_ = scrape(t, r) // scrapes race with writes
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	samples := parseExposition(t, scrape(t, r))
	for i := 0; i < 4; i++ {
		if v := samples[fmt.Sprintf(`test_conc_total{w="%d"}`, i)]; v != 1000 {
			t.Fatalf("worker %d counter = %v, want 1000", i, v)
		}
	}
	if v := samples["test_conc_seconds_count"]; v != 4000 {
		t.Fatalf("histogram count = %v, want 4000", v)
	}
}
