package pathrank_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pathrank"
	"pathrank/internal/merkle"
)

// provenanceFixture builds a genuine Merkle batch over n fake trajectory
// payloads and returns the server-side wire values for it.
func provenanceFixture(t *testing.T, n int) (pathrank.ProvenanceInfo, []pathrank.InclusionProof) {
	t.Helper()
	b := merkle.NewBatcher(merkle.Hash{})
	for i := 0; i < n; i++ {
		b.Add([]byte(fmt.Sprintf("trajectory-%d", i)))
	}
	batch := b.Seal()
	info := pathrank.ProvenanceInfo{
		Generation: 1,
		DataRoot:   batch.Root.Hex(),
		ChainRoot:  batch.Chain.Hex(),
		BatchSize:  n,
	}
	proofs := make([]pathrank.InclusionProof, n)
	for i := 0; i < n; i++ {
		p, err := batch.Prove(i)
		if err != nil {
			t.Fatal(err)
		}
		path := make([]string, len(p.Path))
		for j, h := range p.Path {
			path[j] = h.Hex()
		}
		proofs[i] = pathrank.InclusionProof{
			Seq: int64(100 + i), Generation: 1, Index: i, BatchSize: n,
			LeafHash: batch.Leaves[i].Hex(), Path: path,
			DataRoot: info.DataRoot, ChainRoot: info.ChainRoot,
		}
	}
	return info, proofs
}

func TestClientProvenance(t *testing.T) {
	info, proofs := provenanceFixture(t, 5)
	bySeq := make(map[string]pathrank.InclusionProof, len(proofs))
	for _, p := range proofs {
		bySeq[fmt.Sprint(p.Seq)] = p
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet || r.URL.Path != "/v1/provenance" {
			http.NotFound(w, r)
			return
		}
		seq := r.URL.Query().Get("seq")
		if seq == "" {
			json.NewEncoder(w).Encode(info)
			return
		}
		p, ok := bySeq[seq]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]any{"error": map[string]any{
				"code": pathrank.CodeInvalid, "message": "no inclusion proof for that trajectory",
			}})
			return
		}
		json.NewEncoder(w).Encode(p)
	}))
	defer ts.Close()

	c := &pathrank.Client{BaseURL: ts.URL}
	got, err := c.Provenance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.DataRoot != info.DataRoot || got.BatchSize != info.BatchSize {
		t.Fatalf("Provenance() = %+v, want %+v", got, info)
	}

	for _, want := range proofs {
		proof, err := c.ProveTrajectory(context.Background(), want.Seq)
		if err != nil {
			t.Fatal(err)
		}
		if err := pathrank.VerifyInclusionProof(proof); err != nil {
			t.Fatalf("fetched proof for seq %d: %v", want.Seq, err)
		}
	}

	var apiErr *pathrank.APIError
	if _, err := c.ProveTrajectory(context.Background(), 999); !errors.As(err, &apiErr) {
		t.Fatalf("unknown seq: err = %v, want *APIError", err)
	} else if apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown seq: status %d, want 404", apiErr.Status)
	}
}

func TestVerifyInclusionProofRejects(t *testing.T) {
	_, proofs := provenanceFixture(t, 4)
	good := proofs[2]
	if err := pathrank.VerifyInclusionProof(good); err != nil {
		t.Fatal(err)
	}

	// A tampered leaf must fail verification (flip one hex nibble).
	tampered := good
	tampered.LeafHash = flipNibble(good.LeafHash)
	if err := pathrank.VerifyInclusionProof(tampered); err == nil {
		t.Fatal("tampered leaf hash verified")
	}

	// A proof replayed at the wrong index must fail.
	wrongIndex := good
	wrongIndex.Index = 1
	if err := pathrank.VerifyInclusionProof(wrongIndex); err == nil {
		t.Fatal("proof at wrong index verified")
	}

	// Malformed hex is a parse error, not a panic.
	badHex := good
	badHex.DataRoot = "zz"
	if err := pathrank.VerifyInclusionProof(badHex); err == nil || !strings.Contains(err.Error(), "data root") {
		t.Fatalf("bad data-root hex: err = %v", err)
	}
	badPath := good
	badPath.Path = append([]string{"nope"}, good.Path[1:]...)
	if err := pathrank.VerifyInclusionProof(badPath); err == nil || !strings.Contains(err.Error(), "path[0]") {
		t.Fatalf("bad path hex: err = %v", err)
	}
}

// flipNibble changes the first hex character of s to a different digit.
func flipNibble(s string) string {
	c := byte('0')
	if s[0] == c {
		c = '1'
	}
	return string(c) + s[1:]
}
